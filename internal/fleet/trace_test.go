package fleet

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/jobs"
	"repro/internal/jobs/store"
	"repro/internal/obs"
)

// syncBuffer is a race-safe log sink shared between the worker pool's
// goroutines and the asserting test.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestTracePropagationEndToEnd is the tracing acceptance test at the
// package level: a job POSTed to the dispatcher's HTTP surface with an
// X-Trace-Id must carry that exact ID through the dispatcher's journal
// and span log, across the forward to the owning worker (the worker's
// own status document and slog output show it), and back out on every
// response — while /metrics on both tiers serves a parseable exposition
// including the round-trip histogram.
func TestTracePropagationEndToEnd(t *testing.T) {
	fake := registerFake(t, "fake.fleet_trace")
	// Gate execution so the dispatcher's poller observes the running
	// state (and logs a "started" span) before the job can finish.
	fake.block = make(chan struct{})

	workerLogs := &syncBuffer{}
	pool := jobs.NewPool(jobs.Options{
		Workers: 1, QueueDepth: 16, CacheSize: 16,
		Logger: obs.NewLogger("json", workerLogs),
	})
	workerH := jobs.NewHandler(pool)
	workerSrv := httptest.NewServer(workerH)
	t.Cleanup(func() {
		workerSrv.Close()
		pool.Close()
	})

	st, err := store.Open(t.TempDir(), store.Options{Sync: store.SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	opts := Options{
		Workers:        []string{workerSrv.URL},
		Store:          st,
		RequestTimeout: 2 * time.Second,
		ProbeInterval:  20 * time.Millisecond,
		PollInterval:   10 * time.Millisecond,
	}
	d := newDispatcher(t, opts)
	dispH := NewHandler(d)
	dispSrv := httptest.NewServer(dispH)
	t.Cleanup(dispSrv.Close)

	const trace = "trace.fleet-e2e_01"
	raw, err := json.Marshal(fleetBundle(t, "fake.fleet_trace", 11))
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", dispSrv.URL+"/v1/jobs", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(obs.TraceHeader, trace)
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	body, _ := readAll(resp)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit = %d (%s)", resp.StatusCode, body)
	}
	if got := resp.Header.Get(obs.TraceHeader); got != trace {
		t.Fatalf("202 %s = %q, want %q", obs.TraceHeader, got, trace)
	}
	var sub struct {
		ID      string `json:"id"`
		TraceID string `json:"trace_id"`
	}
	if err := json.Unmarshal(body, &sub); err != nil || sub.ID == "" {
		t.Fatalf("submit body %s: %v", body, err)
	}
	if sub.TraceID != trace {
		t.Fatalf("submit trace_id = %q, want %q", sub.TraceID, trace)
	}

	waitState(t, d, sub.ID, jobs.StateRunning)
	close(fake.block)
	fin := waitState(t, d, sub.ID, jobs.StateDone)
	if fin.Trace != trace {
		t.Fatalf("dispatcher status trace = %q, want %q", fin.Trace, trace)
	}
	stages := map[string]bool{}
	for _, s := range fin.Spans {
		stages[s.Stage] = true
	}
	for _, want := range []string{"queued", "assigned", "started", "done"} {
		if !stages[want] {
			t.Fatalf("dispatcher span log missing %q: %+v", want, fin.Spans)
		}
	}

	// The owning worker saw the same ID: in its status document...
	wresp, err := http.Get(workerSrv.URL + "/v1/jobs/" + fin.Remote)
	if err != nil {
		t.Fatal(err)
	}
	wbody, _ := readAll(wresp)
	var wst struct {
		TraceID string `json:"trace_id"`
	}
	if err := json.Unmarshal(wbody, &wst); err != nil {
		t.Fatal(err)
	}
	if wst.TraceID != trace {
		t.Fatalf("worker status trace_id = %q, want %q (body %s)", wst.TraceID, trace, wbody)
	}
	// ...in its structured logs...
	if !strings.Contains(workerLogs.String(), trace) {
		t.Fatalf("trace %q absent from worker logs:\n%s", trace, workerLogs.String())
	}
	// ...and in the dispatcher's journal record.
	found := false
	for _, rec := range opts.Store.Records() {
		if rec.Job == sub.ID {
			found = true
			if rec.Trace != trace {
				t.Fatalf("journal record trace = %q, want %q", rec.Trace, trace)
			}
		}
	}
	if !found {
		t.Fatalf("job %s not in the dispatcher journal", sub.ID)
	}

	// Both tiers expose a valid exposition; the dispatcher's includes the
	// round-trip histogram with this forward observed.
	for _, tier := range []struct{ name, url string }{
		{"dispatcher", dispSrv.URL + "/metrics"},
		{"worker", workerSrv.URL + "/metrics"},
	} {
		mresp, err := http.Get(tier.url)
		if err != nil {
			t.Fatal(err)
		}
		mbody, _ := readAll(mresp)
		if mresp.StatusCode != http.StatusOK {
			t.Fatalf("%s /metrics = %d", tier.name, mresp.StatusCode)
		}
		if _, err := obs.ParseExposition(string(mbody)); err != nil {
			t.Fatalf("%s exposition does not parse: %v", tier.name, err)
		}
	}
	if n := d.met.roundtrip.Count(); n < 1 {
		t.Fatalf("fleet_roundtrip_seconds observed %d round trips, want >= 1", n)
	}
}

func readAll(resp *http.Response) ([]byte, error) {
	defer resp.Body.Close()
	buf := &bytes.Buffer{}
	_, err := buf.ReadFrom(resp.Body)
	return buf.Bytes(), err
}
