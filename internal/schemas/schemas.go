// Package schemas embeds the JSON Schema documents that descriptor
// artifacts name in their "$schema" fields (qdt-core.schema.json,
// qod.schema.json, ctx.schema.json, job.schema.json) and exposes compiled
// validators for them.
//
// Descriptor structs in qdt/qop/ctxdesc validate semantic consistency; the
// schemas here validate the raw JSON shape, which matters for artifacts
// arriving from other tools (the interoperability case the paper's
// composability principle targets).
package schemas

import (
	"fmt"
	"sort"

	"repro/internal/jsonschema"
)

// QDT is qdt-core.schema.json (paper Listing 2).
const QDT = `{
  "$id": "qdt-core.schema.json",
  "type": "object",
  "required": ["id", "width", "encoding_kind", "bit_order", "measurement_semantics"],
  "properties": {
    "$schema": {"const": "qdt-core.schema.json"},
    "id": {"type": "string", "minLength": 1},
    "name": {"type": "string"},
    "width": {"type": "integer", "minimum": 1, "maximum": 62},
    "encoding_kind": {"enum": ["INT_REGISTER", "BOOL_REGISTER", "PHASE_REGISTER", "ISING_SPIN", "QUBO_BINARY", "FIXED_POINT"]},
    "bit_order": {"enum": ["LSB_0", "MSB_0"]},
    "measurement_semantics": {"enum": ["AS_INT", "AS_BOOL", "AS_PHASE", "AS_SPIN", "AS_FIXED"]},
    "phase_scale": {"type": "string", "pattern": "^\\s*[0-9.]+\\s*(/\\s*[0-9.]+\\s*)?$"},
    "signed": {"type": "boolean"},
    "fraction_bits": {"type": "integer", "minimum": 0},
    "metadata": {"type": "object"}
  },
  "additionalProperties": false
}`

// QOD is qod.schema.json (paper Listing 3).
const QOD = `{
  "$id": "qod.schema.json",
  "type": "object",
  "required": ["name", "rep_kind", "domain_qdt", "codomain_qdt"],
  "properties": {
    "$schema": {"const": "qod.schema.json"},
    "name": {"type": "string", "minLength": 1},
    "rep_kind": {"type": "string", "pattern": "^[A-Z][A-Z0-9_]*$"},
    "domain_qdt": {"type": "string", "minLength": 1},
    "codomain_qdt": {"type": "string", "minLength": 1},
    "params": {"type": "object"},
    "provenance": {"type": "string"},
    "cost_hint": {
      "type": "object",
      "properties": {
        "twoq": {"type": "integer", "minimum": 0},
        "oneq": {"type": "integer", "minimum": 0},
        "depth": {"type": "integer", "minimum": 0},
        "ancilla": {"type": "integer", "minimum": 0},
        "comm_volume": {"type": "integer", "minimum": 0},
        "duration_ns": {"type": "number", "minimum": 0}
      },
      "additionalProperties": false
    },
    "result_schema": {"$ref": "#/$defs/result_schema"}
  },
  "additionalProperties": false,
  "$defs": {
    "result_schema": {
      "type": "object",
      "required": ["basis", "datatype", "bit_significance", "clbit_order"],
      "properties": {
        "basis": {"enum": ["Z", "X", "Y"]},
        "datatype": {"enum": ["AS_INT", "AS_BOOL", "AS_PHASE", "AS_SPIN", "AS_FIXED"]},
        "bit_significance": {"enum": ["LSB_0", "MSB_0"]},
        "clbit_order": {"type": "array", "minItems": 1, "items": {"type": "string", "pattern": "^[A-Za-z_][A-Za-z0-9_]*\\[[0-9]+\\]$"}}
      },
      "additionalProperties": false
    }
  }
}`

// CTX is ctx.schema.json (paper Listings 4 and 5).
const CTX = `{
  "$id": "ctx.schema.json",
  "type": "object",
  "properties": {
    "$schema": {"const": "ctx.schema.json"},
    "exec": {
      "type": "object",
      "required": ["engine"],
      "properties": {
        "engine": {"type": "string", "minLength": 1},
        "samples": {"type": "integer", "minimum": 0},
        "seed": {"type": "integer", "minimum": 0},
        "target": {
          "type": "object",
          "properties": {
            "basis_gates": {"type": "array", "items": {"type": "string"}},
            "coupling_map": {"type": "array", "items": {"$ref": "#/$defs/pair"}},
            "num_qubits": {"type": "integer", "minimum": 1}
          },
          "additionalProperties": false
        },
        "options": {"type": "object"}
      },
      "additionalProperties": false
    },
    "qec": {
      "type": "object",
      "required": ["code_family", "distance"],
      "properties": {
        "code_family": {"enum": ["surface", "repetition"]},
        "distance": {"type": "integer", "minimum": 1},
        "allocator": {"type": "string"},
        "logical_gate_set": {"type": "array", "items": {"type": "string"}},
        "decoder": {"enum": ["majority", "mwpm_lite"]},
        "phys_error_rate": {"type": "number", "minimum": 0, "exclusiveMaximum": 1},
        "rounds": {"type": "integer", "minimum": 0}
      },
      "additionalProperties": false
    },
    "anneal": {
      "type": "object",
      "required": ["num_reads"],
      "properties": {
        "num_reads": {"type": "integer", "minimum": 1},
        "sweeps": {"type": "integer", "minimum": 0},
        "beta_min": {"type": "number", "minimum": 0},
        "beta_max": {"type": "number", "minimum": 0},
        "schedule": {"enum": ["geometric", "linear"]},
        "embed": {"type": "boolean"},
        "topology": {"type": "string"},
        "unit_cells": {"type": "integer", "minimum": 1},
        "chain_strength": {"type": "number", "minimum": 0}
      },
      "additionalProperties": false
    },
    "comm": {
      "type": "object",
      "required": ["qpus", "qubits_per_qpu"],
      "properties": {
        "qpus": {"type": "integer", "minimum": 1},
        "qubits_per_qpu": {"type": "integer", "minimum": 1},
        "allow_teleport": {"type": "boolean"},
        "partition": {"type": "array", "items": {"type": "integer", "minimum": 0}},
        "epr_buffer": {"type": "integer", "minimum": 0}
      },
      "additionalProperties": false
    },
    "pulse": {
      "type": "object",
      "properties": {
        "dt_ns": {"type": "number", "minimum": 0},
        "single_gate_ns": {"type": "number", "minimum": 0},
        "two_gate_ns": {"type": "number", "minimum": 0},
        "calibrations": {"type": "object", "additionalProperties": {"type": "number", "minimum": 0}}
      },
      "additionalProperties": false
    },
    "sweep": {
      "type": "object",
      "required": ["params", "points"],
      "properties": {
        "params": {"type": "array", "minItems": 1, "items": {"type": "string", "minLength": 1}},
        "points": {"type": "array", "minItems": 1, "items": {"type": "array", "items": {"type": "number"}}}
      },
      "additionalProperties": false
    },
    "extensions": {"type": "object"}
  },
  "additionalProperties": false,
  "$defs": {
    "pair": {"type": "array", "minItems": 2, "maxItems": 2, "items": {"type": "integer", "minimum": 0}}
  }
}`

// Job is job.schema.json: the submission bundle produced by the packaging
// step (paper §4.4: "a packaging utility to finally combine the quantum
// data type, operators, and optional context into a submission bundle
// (job.json)").
const Job = `{
  "$id": "job.schema.json",
  "type": "object",
  "required": ["qdts", "operators"],
  "properties": {
    "$schema": {"const": "job.schema.json"},
    "qdts": {"type": "array", "minItems": 1, "items": {"type": "object"}},
    "operators": {"type": "array", "minItems": 1, "items": {"type": "object"}},
    "context": {"type": "object"},
    "provenance": {
      "type": "object",
      "properties": {
        "created_by": {"type": "string"},
        "version": {"type": "string"},
        "intent_fingerprint": {"type": "string"}
      },
      "additionalProperties": false
    }
  },
  "additionalProperties": false
}`

var compiled = map[string]*jsonschema.Schema{
	"qdt-core.schema.json": jsonschema.MustCompile([]byte(QDT)),
	"qod.schema.json":      jsonschema.MustCompile([]byte(QOD)),
	"ctx.schema.json":      jsonschema.MustCompile([]byte(CTX)),
	"job.schema.json":      jsonschema.MustCompile([]byte(Job)),
}

// Names returns the known schema names in sorted order.
func Names() []string {
	names := make([]string, 0, len(compiled))
	for n := range compiled {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Get returns the compiled schema by name.
func Get(name string) (*jsonschema.Schema, error) {
	s, ok := compiled[name]
	if !ok {
		return nil, fmt.Errorf("schemas: unknown schema %q", name)
	}
	return s, nil
}

// Validate validates a raw JSON document against the named schema.
func Validate(name string, doc []byte) error {
	s, err := Get(name)
	if err != nil {
		return err
	}
	return s.ValidateBytes(doc)
}
