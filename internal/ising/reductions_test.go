package ising

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rng"
)

func TestNumberPartitioningPerfect(t *testing.T) {
	// {3, 1, 1, 2, 2, 1}: total 10, perfectly balanced 5/5 exists.
	m, err := NumberPartitioning([]float64{3, 1, 1, 2, 2, 1})
	if err != nil {
		t.Fatal(err)
	}
	gs := m.BruteForce()
	if math.Abs(gs.Energy) > 1e-9 {
		t.Errorf("ground energy %v, want 0 (perfect partition)", gs.Energy)
	}
	if PartitionDifference(gs.Energy) != 0 {
		t.Errorf("difference %v", PartitionDifference(gs.Energy))
	}
	// Each ground mask partitions into equal halves.
	weights := []float64{3, 1, 1, 2, 2, 1}
	for _, mask := range gs.Masks {
		sum := 0.0
		for i, w := range weights {
			if mask>>uint(i)&1 == 1 {
				sum += w
			} else {
				sum -= w
			}
		}
		if math.Abs(sum) > 1e-9 {
			t.Errorf("ground mask %b has imbalance %v", mask, sum)
		}
	}
}

func TestNumberPartitioningOdd(t *testing.T) {
	// {5, 3, 1}: best split difference is 1 → ground energy 1.
	m, err := NumberPartitioning([]float64{5, 3, 1})
	if err != nil {
		t.Fatal(err)
	}
	gs := m.BruteForce()
	if math.Abs(gs.Energy-1) > 1e-9 {
		t.Errorf("ground energy %v, want 1", gs.Energy)
	}
	if d := PartitionDifference(gs.Energy); math.Abs(d-1) > 1e-9 {
		t.Errorf("difference %v, want 1", d)
	}
}

func TestNumberPartitioningEnergyIsSquaredImbalance(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 2 + r.Intn(7)
		weights := make([]float64, n)
		for i := range weights {
			weights[i] = float64(1 + r.Intn(9))
		}
		m, err := NumberPartitioning(weights)
		if err != nil {
			return false
		}
		for mask := uint64(0); mask < uint64(1)<<uint(n); mask++ {
			sum := 0.0
			for i, w := range weights {
				if mask>>uint(i)&1 == 1 {
					sum += w
				} else {
					sum -= w
				}
			}
			if math.Abs(m.EnergyBits(mask)-sum*sum) > 1e-6 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestNumberPartitioningValidation(t *testing.T) {
	if _, err := NumberPartitioning([]float64{1}); err == nil {
		t.Error("single weight accepted")
	}
}

func bruteForceQUBO(q *QUBO) (float64, []uint64) {
	best := math.Inf(1)
	var masks []uint64
	for mask := uint64(0); mask < uint64(1)<<uint(q.N); mask++ {
		e := q.EnergyBits(mask)
		switch {
		case e < best-1e-12:
			best = e
			masks = []uint64{mask}
		case math.Abs(e-best) <= 1e-12:
			masks = append(masks, mask)
		}
	}
	return best, masks
}

func TestMinVertexCoverExact(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		g := graph.ErdosRenyi(7, 0.4, seed)
		q, err := MinVertexCover(g, 2)
		if err != nil {
			t.Fatal(err)
		}
		_, masks := bruteForceQUBO(q)
		// Exact minimum cover size by direct enumeration.
		minCover := g.N + 1
		for mask := uint64(0); mask < uint64(1)<<uint(g.N); mask++ {
			if IsVertexCover(g, mask) && PopCount(mask) < minCover {
				minCover = PopCount(mask)
			}
		}
		for _, mask := range masks {
			if !IsVertexCover(g, mask) {
				t.Errorf("seed %d: QUBO minimum %b is not a cover", seed, mask)
			}
			if PopCount(mask) != minCover {
				t.Errorf("seed %d: QUBO cover size %d, optimum %d", seed, PopCount(mask), minCover)
			}
		}
	}
}

func TestMaxIndependentSetExact(t *testing.T) {
	for seed := uint64(1); seed <= 6; seed++ {
		g := graph.ErdosRenyi(7, 0.4, seed)
		q, err := MaxIndependentSet(g, 2)
		if err != nil {
			t.Fatal(err)
		}
		_, masks := bruteForceQUBO(q)
		maxSet := 0
		for mask := uint64(0); mask < uint64(1)<<uint(g.N); mask++ {
			if IsIndependentSet(g, mask) && PopCount(mask) > maxSet {
				maxSet = PopCount(mask)
			}
		}
		for _, mask := range masks {
			if !IsIndependentSet(g, mask) {
				t.Errorf("seed %d: QUBO minimum %b is not independent", seed, mask)
			}
			if PopCount(mask) != maxSet {
				t.Errorf("seed %d: QUBO set size %d, optimum %d", seed, PopCount(mask), maxSet)
			}
		}
	}
}

func TestCoverAndISComplement(t *testing.T) {
	// König duality of the reductions themselves: the complement of a
	// maximum independent set is a minimum vertex cover.
	g := graph.ErdosRenyi(8, 0.5, 9)
	qIS, _ := MaxIndependentSet(g, 2)
	_, isMasks := bruteForceQUBO(qIS)
	full := uint64(1)<<uint(g.N) - 1
	for _, mask := range isMasks {
		if !IsVertexCover(g, mask^full) {
			t.Errorf("complement of IS %b is not a cover", mask)
		}
	}
}

func TestPenaltyValidation(t *testing.T) {
	g := graph.Cycle(4)
	if _, err := MinVertexCover(g, 1); err == nil {
		t.Error("penalty 1 accepted for vertex cover")
	}
	if _, err := MaxIndependentSet(g, 0.5); err == nil {
		t.Error("penalty 0.5 accepted for independent set")
	}
}

func TestPopCount(t *testing.T) {
	cases := map[uint64]int{0: 0, 1: 1, 3: 2, 255: 8, 1 << 40: 1}
	for mask, want := range cases {
		if got := PopCount(mask); got != want {
			t.Errorf("PopCount(%d) = %d, want %d", mask, got, want)
		}
	}
}
