package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"path/filepath"
)

// soaAllowFiles are internal/sim files exempt from the complex ban.
// plan.go is circuit compilation: it folds gate matrices with complex128
// arithmetic once per compile, then splits the result into real/imag
// planes before any sweep runs — compile time is not the hot path.
// paramplan.go is the parametric variant of the same fold — its rebuild
// closures replay those complex128 matrix products per Bind, still
// before any amplitudes are touched.
var soaAllowFiles = map[string]bool{
	"plan.go":      true,
	"paramplan.go": true,
}

// SoaComplex enforces the PR 7 structure-of-arrays contract: kernel
// sweeps in internal/sim operate on split real/imag float64 planes, so
// no complex64/complex128 arithmetic and no []complex slice allocations
// belong in sweep code. The complex(), real() and imag() builtins stay
// legal — they are the conversion shims at the public Amplitudes
// boundary — as is anything in a _test.go file (the parity tests keep a
// complex128 reference simulator on purpose) or in the compile-time
// allowlist.
func SoaComplex() *Analyzer {
	return &Analyzer{
		Name: "soacomplex",
		Doc:  "no complex arithmetic or []complex allocations in internal/sim sweep code",
		Run:  runSoaComplex,
	}
}

func runSoaComplex(p *Package) []Diagnostic {
	if !hasPathSuffix(p.Path, "internal/sim") {
		return nil
	}
	var diags []Diagnostic
	report := func(n ast.Node, format string, args ...any) {
		diags = append(diags, Diagnostic{
			Pos:      p.position(n),
			Analyzer: "soacomplex",
			Message:  fmt.Sprintf(format, args...),
		})
	}
	for _, f := range p.Files {
		if p.inTestFile(f) {
			continue
		}
		if soaAllowFiles[filepath.Base(p.position(f).Filename)] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch x := n.(type) {
			case *ast.BinaryExpr:
				switch x.Op {
				case token.ADD, token.SUB, token.MUL, token.QUO:
					if p.isComplex(x.X) || p.isComplex(x.Y) {
						report(x, "complex arithmetic (%s) in sweep code; operate on the split real/imag planes", x.Op)
					}
				}
			case *ast.AssignStmt:
				switch x.Tok {
				case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
					if len(x.Lhs) == 1 && p.isComplex(x.Lhs[0]) {
						report(x, "complex compound assignment (%s) in sweep code; operate on the split real/imag planes", x.Tok)
					}
				}
			case *ast.UnaryExpr:
				if x.Op == token.SUB && p.isComplex(x.X) {
					report(x, "complex negation in sweep code; operate on the split real/imag planes")
				}
			case *ast.CallExpr:
				if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok && id.Name == "make" && len(x.Args) > 0 {
					if t, ok := p.Info.Types[x]; ok {
						if sl, ok := t.Type.Underlying().(*types.Slice); ok && isComplexType(sl.Elem()) {
							report(x, "[]complex allocation in sweep code; allocate split real/imag float64 planes")
						}
					}
				}
			case *ast.CompositeLit:
				if t, ok := p.Info.Types[x]; ok {
					if sl, ok := t.Type.Underlying().(*types.Slice); ok && isComplexType(sl.Elem()) {
						report(x, "[]complex literal in sweep code; build split real/imag float64 planes")
					}
				}
			}
			return true
		})
	}
	return diags
}

func (p *Package) isComplex(e ast.Expr) bool {
	t, ok := p.Info.Types[e]
	return ok && t.Type != nil && isComplexType(t.Type)
}

func isComplexType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsComplex != 0
}
