package transpile

import (
	"repro/internal/circuit"
	"repro/internal/ctxdesc"
)

// Options mirror the context descriptor's target and options blocks.
type Options struct {
	BasisGates        []string
	CouplingMap       [][2]int
	OptimizationLevel int
}

// FromContext extracts transpiler options from an execution context.
func FromContext(ctx *ctxdesc.Context) Options {
	opts := Options{OptimizationLevel: 1}
	if ctx == nil {
		return opts
	}
	opts.OptimizationLevel = ctx.OptimizationLevel()
	if ctx.Exec != nil && ctx.Exec.Target != nil {
		opts.BasisGates = ctx.Exec.Target.BasisGates
		opts.CouplingMap = ctx.Exec.Target.CouplingMap
	}
	return opts
}

// Stats reports what transpilation did.
type Stats struct {
	DepthBefore   int
	DepthAfter    int
	TwoQBefore    int
	TwoQAfter     int
	SizeBefore    int
	SizeAfter     int
	SwapsInserted int
}

// Result is the transpiled circuit plus layout and stats.
type Result struct {
	Circuit *circuit.Circuit
	Layout  Layout // final logical→physical mapping
	Stats   Stats
}

// Transpile runs the pass pipeline: decompose → optimize → route →
// optimize. The double optimization mirrors production stacks: the first
// pass shrinks the circuit the router sees; the second cleans up after
// SWAP insertion.
func Transpile(c *circuit.Circuit, opts Options) (*Result, error) {
	stats := Stats{
		DepthBefore: c.Depth(),
		TwoQBefore:  c.TwoQubitCount(),
		SizeBefore:  c.Size(),
	}
	lowered, err := Decompose(c, opts.BasisGates)
	if err != nil {
		return nil, err
	}
	zsx := hasZSXBasis(opts.BasisGates)
	lowered = OptimizeBasis(lowered, opts.OptimizationLevel, zsx)
	routed, layout, swaps, err := Route(lowered, opts.CouplingMap)
	if err != nil {
		return nil, err
	}
	// After routing, inserted SWAPs must survive if the basis excludes
	// them: decompose again (no-op when SWAPs are allowed or no basis).
	if len(opts.BasisGates) > 0 && swaps > 0 {
		routed, err = Decompose(routed, opts.BasisGates)
		if err != nil {
			return nil, err
		}
	}
	routed = OptimizeBasis(routed, opts.OptimizationLevel, zsx)
	// Level 3's resynthesis may emit rotations outside an exotic basis;
	// restore the constraint and run a cheap cleanup that introduces no
	// new gate kinds.
	if opts.OptimizationLevel >= 3 && len(opts.BasisGates) > 0 && !zsx {
		routed, err = Decompose(routed, opts.BasisGates)
		if err != nil {
			return nil, err
		}
		routed = Optimize(routed, 2)
	}
	stats.DepthAfter = routed.Depth()
	stats.TwoQAfter = routed.TwoQubitCount()
	stats.SizeAfter = routed.Size()
	stats.SwapsInserted = swaps
	return &Result{Circuit: routed, Layout: layout, Stats: stats}, nil
}

// hasZSXBasis reports whether the basis contains both sx and rz, the
// hardware set level-3 resynthesis can target directly.
func hasZSXBasis(basis []string) bool {
	hasSX, hasRZ := false, false
	for _, b := range basis {
		switch b {
		case "sx":
			hasSX = true
		case "rz":
			hasRZ = true
		}
	}
	return hasSX && hasRZ
}
