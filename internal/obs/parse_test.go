package obs

import (
	"io"
	"net/http"
	"strings"
	"testing"
)

func mustParse(t *testing.T, r *Registry) []Family {
	t.Helper()
	var sb strings.Builder
	if err := r.WriteText(&sb); err != nil {
		t.Fatal(err)
	}
	fams, err := ParseExposition(sb.String())
	if err != nil {
		t.Fatalf("ParseExposition: %v\nbody:\n%s", err, sb.String())
	}
	return fams
}

func findFamily(t *testing.T, fams []Family, name string) *Family {
	t.Helper()
	for i := range fams {
		if fams[i].Name == name {
			return &fams[i]
		}
	}
	t.Fatalf("family %s not found", name)
	return nil
}

func httpGet(t *testing.T, url string) string {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: %d\n%s", url, resp.StatusCode, b)
	}
	return string(b)
}

func TestParseValidBody(t *testing.T) {
	body := `# HELP http_requests_total The total number of HTTP requests.
# TYPE http_requests_total counter
http_requests_total{method="post",code="200"} 1027 1395066363000
http_requests_total{method="post",code="400"} 3

# Minimalistic line:
metric_without_timestamp_and_labels 12.47
# TYPE rpc_duration_seconds histogram
rpc_duration_seconds_bucket{le="0.05"} 24054
rpc_duration_seconds_bucket{le="0.1"} 33444
rpc_duration_seconds_bucket{le="+Inf"} 34444
rpc_duration_seconds_sum 8953.332
rpc_duration_seconds_count 34444
`
	fams, err := ParseExposition(body)
	if err != nil {
		t.Fatal(err)
	}
	f := findFamily(t, fams, "http_requests_total")
	if f.Type != "counter" {
		t.Fatalf("type = %q, want counter", f.Type)
	}
	if v, ok := f.Value(Label{Name: "code", Value: "200"}); !ok || v != 1027 {
		t.Fatalf("code=200 = %v,%v", v, ok)
	}
	h := findFamily(t, fams, "rpc_duration_seconds")
	if len(h.Samples) != 5 {
		t.Fatalf("histogram folded %d samples, want 5", len(h.Samples))
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	cases := map[string]string{
		"bad metric name": `0bad_name 1` + "\n",
		"bad value":       `metric_a one` + "\n",
		"unquoted label":  `metric_a{x=1} 1` + "\n",
		"unterminated":    `metric_a{x="1" 1` + "\n",
		"duplicate sample": `metric_a{x="1"} 1
metric_a{x="1"} 2
`,
		"duplicate TYPE": `# TYPE metric_a counter
# TYPE metric_a gauge
`,
		"TYPE after samples": `metric_a 1
# TYPE metric_a counter
`,
		"negative counter": `# TYPE metric_a counter
metric_a -1
`,
		"unknown type": `# TYPE metric_a widget` + "\n",
		"histogram missing +Inf": `# TYPE h histogram
h_bucket{le="1"} 1
h_sum 0.5
h_count 1
`,
		"histogram non-monotonic": `# TYPE h histogram
h_bucket{le="1"} 5
h_bucket{le="2"} 3
h_bucket{le="+Inf"} 5
h_sum 1
h_count 5
`,
		"histogram le not ascending": `# TYPE h histogram
h_bucket{le="2"} 3
h_bucket{le="1"} 5
h_bucket{le="+Inf"} 5
h_sum 1
h_count 5
`,
		"histogram inf != count": `# TYPE h histogram
h_bucket{le="1"} 4
h_bucket{le="+Inf"} 4
h_sum 1
h_count 5
`,
		"histogram missing sum": `# TYPE h histogram
h_bucket{le="+Inf"} 1
h_count 1
`,
	}
	for name, body := range cases {
		if _, err := ParseExposition(body); err == nil {
			t.Errorf("%s: parser accepted invalid body:\n%s", name, body)
		}
	}
}

func TestParseHistogramPerLabelSet(t *testing.T) {
	body := `# TYPE h histogram
h_bucket{op="read",le="1"} 2
h_bucket{op="read",le="+Inf"} 2
h_sum{op="read"} 0.4
h_count{op="read"} 2
h_bucket{op="write",le="1"} 7
h_bucket{op="write",le="+Inf"} 9
h_sum{op="write"} 12
h_count{op="write"} 9
`
	if _, err := ParseExposition(body); err != nil {
		t.Fatalf("per-label-set histogram rejected: %v", err)
	}
}
