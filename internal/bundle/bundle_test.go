package bundle

import (
	"path/filepath"
	"strings"
	"testing"

	"repro/internal/ctxdesc"
	"repro/internal/qdt"
	"repro/internal/qop"
)

func testBundle(t *testing.T) *Bundle {
	t.Helper()
	vars := qdt.NewIsingVars("ising_vars", "s", 4)
	prep := qop.New("prep", qop.PrepUniform, "ising_vars")
	meas := qop.New("measure", qop.Measurement, "ising_vars")
	meas.Result = qop.DefaultResultSchema("ising_vars", 4, "AS_BOOL", "LSB_0")
	ctx := ctxdesc.NewGate("gate.statevector", 1024, 42)
	b, err := New([]*qdt.DataType{vars}, qop.Sequence{prep, meas}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestNewStampsProvenance(t *testing.T) {
	b := testBundle(t)
	if b.Provenance == nil || b.Provenance.IntentFingerprint == "" {
		t.Fatal("provenance not stamped")
	}
	if len(b.Provenance.IntentFingerprint) != 64 {
		t.Errorf("fingerprint length %d, want 64 hex chars", len(b.Provenance.IntentFingerprint))
	}
	if b.Provenance.Version != Version {
		t.Errorf("version = %q", b.Provenance.Version)
	}
}

func TestValidateOK(t *testing.T) {
	b := testBundle(t)
	if err := b.Validate(qop.ValidateOptions{}); err != nil {
		t.Errorf("valid bundle rejected: %v", err)
	}
	if err := b.ValidateAgainstSchemas(); err != nil {
		t.Errorf("valid bundle fails schemas: %v", err)
	}
}

func TestValidateCatches(t *testing.T) {
	t.Run("empty qdts", func(t *testing.T) {
		b := testBundle(t)
		b.QDTs = nil
		if err := b.Validate(qop.ValidateOptions{}); err == nil {
			t.Error("bundle without QDTs accepted")
		}
	})
	t.Run("empty operators", func(t *testing.T) {
		b := testBundle(t)
		b.Operators = nil
		if err := b.Validate(qop.ValidateOptions{}); err == nil {
			t.Error("bundle without operators accepted")
		}
	})
	t.Run("duplicate qdt id", func(t *testing.T) {
		b := testBundle(t)
		b.QDTs = append(b.QDTs, qdt.NewIsingVars("ising_vars", "dup", 4))
		err := b.Validate(qop.ValidateOptions{})
		if err == nil || !strings.Contains(err.Error(), "duplicate") {
			t.Errorf("duplicate id not caught: %v", err)
		}
	})
	t.Run("dangling operator register", func(t *testing.T) {
		b := testBundle(t)
		b.Operators = append(qop.Sequence{qop.New("x", qop.PrepUniform, "ghost")}, b.Operators...)
		if err := b.Validate(qop.ValidateOptions{}); err == nil {
			t.Error("dangling register not caught")
		}
	})
	t.Run("invalid context", func(t *testing.T) {
		b := testBundle(t)
		b.Context = &ctxdesc.Context{Schema: ctxdesc.SchemaName, Anneal: &ctxdesc.Anneal{NumReads: 0}}
		if err := b.Validate(qop.ValidateOptions{}); err == nil {
			t.Error("invalid context not caught")
		}
	})
	t.Run("wrong schema", func(t *testing.T) {
		b := testBundle(t)
		b.Schema = "nope.json"
		if err := b.Validate(qop.ValidateOptions{}); err == nil {
			t.Error("wrong $schema not caught")
		}
	})
}

func TestQDTLookup(t *testing.T) {
	b := testBundle(t)
	d, err := b.QDT("ising_vars")
	if err != nil || d.Width != 4 {
		t.Errorf("QDT lookup: %v, %v", d, err)
	}
	if _, err := b.QDT("missing"); err == nil {
		t.Error("missing QDT lookup succeeded")
	}
}

func TestFingerprintContextIndependence(t *testing.T) {
	// The E9 core property: the fingerprint hashes only intent, so two
	// bundles differing only in context have identical fingerprints.
	b := testBundle(t)
	fpGate, err := b.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	annealCtx := ctxdesc.NewAnneal("anneal.sa", 1000, 7)
	b2 := b.WithContext(annealCtx)
	fpAnneal, err := b2.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fpGate != fpAnneal {
		t.Errorf("fingerprint changed with context: %s vs %s", fpGate, fpAnneal)
	}
	// But changing intent changes it.
	b3 := testBundle(t)
	b3.Operators[0].SetParam("anything", 1)
	fp3, _ := b3.Fingerprint()
	if fp3 == fpGate {
		t.Error("intent change did not change fingerprint")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	b := testBundle(t)
	path := filepath.Join(t.TempDir(), "job.json")
	if err := b.Save(path); err != nil {
		t.Fatal(err)
	}
	back, err := Load(path, qop.ValidateOptions{})
	if err != nil {
		t.Fatalf("Load: %v", err)
	}
	if len(back.QDTs) != 1 || len(back.Operators) != 2 {
		t.Errorf("round trip lost artifacts: %d qdts, %d ops", len(back.QDTs), len(back.Operators))
	}
	fpA, _ := b.Fingerprint()
	fpB, _ := back.Fingerprint()
	if fpA != fpB {
		t.Errorf("fingerprint not stable across save/load: %s vs %s", fpA, fpB)
	}
	if back.Context == nil || back.Context.Exec.Seed != 42 {
		t.Error("context lost in round trip")
	}
}

func TestLoadMissingFile(t *testing.T) {
	if _, err := Load(filepath.Join(t.TempDir(), "absent.json"), qop.ValidateOptions{}); err == nil {
		t.Error("missing file load succeeded")
	}
}

func TestFromJSONRejectsInvalid(t *testing.T) {
	if _, err := FromJSON([]byte(`{`), qop.ValidateOptions{}); err == nil {
		t.Error("malformed JSON accepted")
	}
	if _, err := FromJSON([]byte(`{"$schema":"job.schema.json","qdts":[],"operators":[]}`), qop.ValidateOptions{}); err == nil {
		t.Error("empty bundle accepted")
	}
}
