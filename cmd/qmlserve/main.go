// Command qmlserve runs the middle layer as an HTTP job service: the
// queued, job-ID-addressed consumption model of production quantum
// backends (IBM Quantum's job API, D-Wave Leap), backed by the
// internal/jobs worker pool and content-addressed result cache.
//
//	qmlserve -addr :8080 -workers 8 -queue 256 -cache 4096 -data-dir /var/lib/qmlserve
//
// Submit the quickstart bundle and poll it:
//
//	curl -s -X POST --data-binary @job.json localhost:8080/v1/jobs
//	  → {"id":"job-00000001","state":"queued","cache_hit":false}
//	curl -s localhost:8080/v1/jobs/job-00000001
//	  → {"id":"job-00000001","state":"done","engine":"gate.aer_simulator",...}
//	curl -s localhost:8080/v1/jobs/job-00000001/result
//	  → {"engine":"gate.aer_simulator","samples":10000,"entries":[...]}
//	curl -s 'localhost:8080/v1/jobs?state=done&limit=20'   # history listing
//	curl -s localhost:8080/v1/engines
//	curl -s localhost:8080/v1/stats
//
// Re-POSTing an identical bundle (same intent, context, shots, seed)
// returns a new job ID already in state "done" with "cache_hit": true —
// the result is served from the content-addressed cache without
// re-execution, visible in /v1/stats as cache_hits. A duplicate of a job
// that is *currently executing* coalesces onto it instead of running
// twice ("coalesced": true in its status, coalesced in /v1/stats).
//
// The pool doubles as the statevector shard scheduler: a job that starts
// while the pool is otherwise idle is granted -max-shards parallel shards
// (default GOMAXPROCS) so one big simulation spans every core, while jobs
// running alongside others stay single-shard. POST /v1/jobs?shards=N pins
// the grant per job; /v1/stats reports max_shards and wide_jobs.
//
// # Durability
//
// With -data-dir the service survives crashes: every job transition
// appends to an append-only JSONL journal and results persist as
// content-addressed files (internal/jobs/store). On startup the journal
// replays — terminal jobs answer GET /v1/jobs/{id} and /result exactly as
// before the restart, and jobs that were queued or running when the
// process died are requeued and re-run (execution is deterministic in
// bundle+shots+seed, so the re-run's counts are the ones the lost run
// would have produced). -fsync picks the journal fsync policy: "always"
// (default — an acknowledged submission survives an immediate crash),
// "group" (the same guarantee with concurrent appenders sharing one
// fsync barrier), "terminal" or "none". Without -data-dir the service is
// in-memory, as before.
//
// On SIGINT/SIGTERM the server drains: in-flight HTTP requests get up to
// 10 s, the pool finishes running and queued jobs (new submissions fail
// fast with 503), and the journal is flushed and closed before exit.
//
// # Fleet dispatch
//
// With -dispatch the same binary becomes a fleet front-end instead of a
// worker: it runs no pool of its own and forwards every job to the
// listed qmlserve nodes over the same /v1 protocol (internal/fleet).
//
//	qmlserve -addr :8080 -dispatch 10.0.0.1:8081,10.0.0.2:8081 -data-dir /var/lib/qmlserve
//
// Routing is load-aware with cache-key affinity (identical bundles land
// on the worker that already caches their result), dead workers are
// ejected by health probes and their in-flight jobs re-forwarded, and
// with -data-dir every accepted job plus its worker assignment is
// journaled — by default under the group-commit fsync policy — so both
// worker deaths and dispatcher restarts preserve accepted work.
// -probe-interval and -poll-interval tune the health and job-status
// cadences.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/backend"
	"repro/internal/fleet"
	"repro/internal/jobs"
	"repro/internal/jobs/store"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker goroutines (0 = NumCPU)")
	queue := flag.Int("queue", 64, "bounded queue depth (full queue → 429)")
	cache := flag.Int("cache", 1024, "result-cache entries (negative disables)")
	maxShards := flag.Int("max-shards", 0, "statevector shards granted to a lone simulation job (0 = GOMAXPROCS)")
	dataDir := flag.String("data-dir", "", "journal + result directory for crash-safe restarts (empty = in-memory)")
	fsync := flag.String("fsync", "", "journal fsync policy: always|group|terminal|none (default: always, or group in -dispatch mode)")
	dispatch := flag.String("dispatch", "", "comma-separated worker base URLs: serve as a fleet dispatcher instead of a worker")
	probeInterval := flag.Duration("probe-interval", time.Second, "dispatcher: worker health probe cadence")
	pollInterval := flag.Duration("poll-interval", 100*time.Millisecond, "dispatcher: remote job status poll cadence")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: qmlserve [-addr :8080] [-workers n] [-queue n] [-cache n] [-max-shards n] [-data-dir dir] [-fsync always|group|terminal|none] [-dispatch w1,w2,...]")
		os.Exit(2)
	}
	if *fsync == "" {
		// Workers default to per-event fsync; the dispatcher journals
		// from concurrent request goroutines, where group commit shares
		// the fsync barriers.
		if *dispatch != "" {
			*fsync = "group"
		} else {
			*fsync = "always"
		}
	}
	var err error
	if *dispatch != "" {
		err = runDispatch(*addr, *dispatch, *dataDir, *fsync, *probeInterval, *pollInterval)
	} else {
		err = run(*addr, *workers, *queue, *cache, *maxShards, *dataDir, *fsync)
	}
	if err != nil {
		log.Fatalf("qmlserve: %v", err)
	}
}

// runDispatch brings up the fleet front-end, blocks until
// SIGINT/SIGTERM, and tears down in order: HTTP drain, dispatcher stop,
// journal flush + close. Jobs still running on workers keep running;
// the journal carries their assignments to the next dispatcher life.
func runDispatch(addr, dispatch, dataDir, fsync string, probeInterval, pollInterval time.Duration) error {
	var st *store.Store
	if dataDir != "" {
		policy, err := store.ParseSyncPolicy(fsync)
		if err != nil {
			return err
		}
		st, err = store.Open(dataDir, store.Options{Sync: policy})
		if err != nil {
			return err
		}
	}
	d, err := fleet.New(fleet.Options{
		Workers:       strings.Split(dispatch, ","),
		Store:         st,
		ProbeInterval: probeInterval,
		PollInterval:  pollInterval,
	})
	if err != nil {
		if st != nil {
			st.Close()
		}
		return err
	}
	if st != nil {
		s := d.Stats()
		log.Printf("qmlserve: dispatcher recovered %d job records from %s (%d re-attached)",
			s.Recovered, dataDir, s.Reattached)
	}

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		d.Close()
		if st != nil {
			st.Close()
		}
		return err
	}
	srv := &http.Server{Handler: fleet.NewHandler(d)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	log.Printf("qmlserve: dispatching to workers %s; listening on %s", dispatch, ln.Addr())

	select {
	case err := <-errc:
		d.Close()
		if st != nil {
			st.Close()
		}
		return err
	case <-ctx.Done():
	}

	log.Printf("qmlserve: dispatcher shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("qmlserve: shutdown: %v", err)
	}
	d.Close()
	if st != nil {
		if err := st.Close(); err != nil {
			log.Printf("qmlserve: closing journal: %v", err)
		}
	}
	s := d.Stats()
	log.Printf("qmlserve: dispatcher done (submitted=%d completed=%d failed=%d forwarded=%d reforwarded=%d journal_events=%d)",
		s.Submitted, s.Completed, s.Failed, s.Forwarded, s.Reforwarded, s.Events)
	return nil
}

// run brings the service up, blocks until SIGINT/SIGTERM or a listener
// failure, and tears it down in order: HTTP drain, pool drain, journal
// flush + close.
func run(addr string, workers, queue, cache, maxShards int, dataDir, fsync string) error {
	var st *store.Store
	if dataDir != "" {
		policy, err := store.ParseSyncPolicy(fsync)
		if err != nil {
			return err
		}
		st, err = store.Open(dataDir, store.Options{Sync: policy})
		if err != nil {
			return err
		}
	}

	pool := jobs.NewPool(jobs.Options{
		Workers: workers, QueueDepth: queue, CacheSize: cache,
		MaxShards: maxShards, Store: st,
	})
	if st != nil {
		s := pool.Stats()
		log.Printf("qmlserve: recovered %d job records from %s (%d requeued, %d results on disk)",
			s.Recovered, dataDir, s.Requeued, s.Results)
	}

	// An explicit listener (not ListenAndServe) so ":0" works and the
	// bound address is known — the restart test leans on both.
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		pool.Close()
		if st != nil {
			st.Close()
		}
		return err
	}
	srv := &http.Server{Handler: jobs.NewHandler(pool)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	log.Printf("qmlserve: listening on %s (engines: %v)", ln.Addr(), backend.Engines())

	select {
	case err := <-errc:
		pool.Close()
		if st != nil {
			st.Close()
		}
		return err
	case <-ctx.Done():
	}

	log.Printf("qmlserve: shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		// DeadlineExceeded here means in-flight requests were cut off.
		log.Printf("qmlserve: shutdown: %v", err)
	}
	// Drain the pool: running and queued jobs finish (journaling their
	// terminal states), coalesced waiters are released with their
	// primaries, late submissions fail fast with ErrClosed.
	pool.Close()
	if st != nil {
		if err := st.Close(); err != nil {
			log.Printf("qmlserve: closing journal: %v", err)
		}
	}
	s := pool.Stats()
	log.Printf("qmlserve: done (submitted=%d completed=%d failed=%d cache_hits=%d journal_events=%d)",
		s.Submitted, s.Completed, s.Failed, s.CacheHits, s.Events)
	return nil
}
