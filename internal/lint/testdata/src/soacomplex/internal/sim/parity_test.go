package sim

import "testing"

// TestParityReference keeps interleaved complex128 arithmetic the way
// the real parity tests keep their reference simulator: _test.go files
// are deliberately out of scope.
func TestParityReference(t *testing.T) {
	amps := []complex128{complex(1, 2), complex(3, 4)}
	acc := amps[0] * amps[1]
	if real(acc) == 0 && imag(acc) == 0 {
		t.Fatal("unexpected zero product")
	}
}
