package sim

import (
	"testing"
	"unsafe"
)

// TestAlignedFloatsAlignment pins the allocation contract both amplitude
// planes and the scratch buffers rely on: the base address sits on a
// 64-byte cache-line boundary, the slice holds exactly n elements, and the
// capacity is clamped so appends cannot reach back onto the unaligned
// prefix.
func TestAlignedFloatsAlignment(t *testing.T) {
	for _, n := range []int{1, 7, 8, 9, 1 << 10, 1<<13 + 3, 1 << 20} {
		s := alignedFloats(n)
		if len(s) != n {
			t.Fatalf("alignedFloats(%d) has len %d", n, len(s))
		}
		if cap(s) != n {
			t.Fatalf("alignedFloats(%d) has cap %d; appends could step onto the prefix", n, cap(s))
		}
		addr := uintptr(unsafe.Pointer(unsafe.SliceData(s)))
		if addr%cacheLine != 0 {
			t.Fatalf("alignedFloats(%d) base %#x not %d-byte aligned", n, addr, cacheLine)
		}
		// The slice must be fully writable.
		s[0], s[n-1] = 1, 2
	}
	if s := alignedFloats(0); s != nil {
		t.Fatalf("alignedFloats(0) = %v, want nil", s)
	}
}

// TestStatePlanesAligned checks that freshly allocated states and their
// scratch planes actually use the aligned allocator.
func TestStatePlanesAligned(t *testing.T) {
	s := mustState(t, 10)
	for name, plane := range map[string][]float64{
		"re": s.re, "im": s.im,
		"scratchRe": s.scratchPlanes().re, "scratchIm": s.scratchPlanes().im,
	} {
		addr := uintptr(unsafe.Pointer(unsafe.SliceData(plane)))
		if addr%cacheLine != 0 {
			t.Errorf("%s plane base %#x not %d-byte aligned", name, addr, cacheLine)
		}
	}
}
