package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"repro/internal/backend"
	"repro/internal/bundle"
	"repro/internal/jobs"
	"repro/internal/result"
)

// profiledFake is the injectable engine with profiling support: its
// ExecuteProfiled attaches a recognizable kernel table under
// Meta["profile"], the way the gate engine attaches sim.Profile.
type profiledFake struct {
	fakeBackend
}

func (f *profiledFake) ExecuteProfiled(b *bundle.Bundle, shards int, stages backend.StageFunc) (*result.Result, error) {
	res, err := f.Execute(b)
	if err != nil {
		return nil, err
	}
	if res.Meta == nil {
		res.Meta = map[string]any{}
	}
	res.Meta["profile"] = map[string]any{
		"shards":   1,
		"total_ns": 12345,
		"kernels": []map[string]any{{
			"index": 0, "kind": "gate1q", "support": 1, "ns": 12345,
			"shard_min_ns": 12345, "shard_max_ns": 12345, "imbalance": 1.0,
		}},
	}
	return res, nil
}

func registerProfiledFake(t *testing.T, name string) *profiledFake {
	t.Helper()
	f := &profiledFake{fakeBackend: fakeBackend{name: name}}
	backend.Register(name, func() backend.Backend { return f })
	t.Cleanup(func() { backend.Unregister(name) })
	return f
}

// checkProfileDoc decodes a proxied profile document and verifies the
// kernel table the fake engine attached survived the hop.
func checkProfileDoc(t *testing.T, raw json.RawMessage) {
	t.Helper()
	var doc struct {
		TotalNs int64 `json:"total_ns"`
		Kernels []struct {
			Kind string `json:"kind"`
			Ns   int64  `json:"ns"`
		} `json:"kernels"`
	}
	if err := json.Unmarshal(raw, &doc); err != nil {
		t.Fatalf("profile is not a kernel table: %v (%s)", err, raw)
	}
	if doc.TotalNs != 12345 || len(doc.Kernels) != 1 || doc.Kernels[0].Kind != "gate1q" {
		t.Fatalf("profile lost content through the dispatcher: %s", raw)
	}
}

// TestProfileProxiedThroughDispatcher: a profiled submission forwarded
// to a worker comes back with the kernel table in the dispatcher's
// status document and in the proxied result meta, while an unprofiled
// job stays clean.
func TestProfileProxiedThroughDispatcher(t *testing.T) {
	registerProfiledFake(t, "fake.fleet_profile")
	w1, w2 := startWorker(t, 2), startWorker(t, 2)
	d := newDispatcher(t, fastOpts(w1, w2))

	st, err := d.SubmitTraced(fleetBundle(t, "fake.fleet_profile", 3), 0, "", true)
	if err != nil {
		t.Fatal(err)
	}
	fin, err := d.Wait(st.ID)
	if err != nil || fin.State != jobs.StateDone {
		t.Fatalf("profiled job: %+v %v", fin, err)
	}
	if len(fin.Profile) == 0 {
		t.Fatal("dispatcher status lost the worker's profile")
	}
	checkProfileDoc(t, fin.Profile)

	code, body, err := d.Result(context.Background(), st.ID)
	if err != nil || code != http.StatusOK || !bytes.Contains(body, []byte(`"profile"`)) {
		t.Fatalf("proxied result lost the profile: %d %v %s", code, err, body)
	}

	// An unprofiled job (different key) carries no profile document.
	plain, err := d.Submit(fleetBundle(t, "fake.fleet_profile", 4), 0)
	if err != nil {
		t.Fatal(err)
	}
	fin, err = d.Wait(plain.ID)
	if err != nil || fin.State != jobs.StateDone {
		t.Fatalf("unprofiled job: %+v %v", fin, err)
	}
	if len(fin.Profile) != 0 {
		t.Fatalf("unprofiled job grew a profile: %s", fin.Profile)
	}
}

// TestProfiledSweepScattered: a profiled sweep POSTed to the dispatcher
// front with ?profile=true scatters across both workers, and the
// terminal status carries the merged per-kind profile aggregate, full
// progress, and the per-range assignment table.
func TestProfiledSweepScattered(t *testing.T) {
	w1, w2 := startWorker(t, 2), startWorker(t, 2)
	d := newDispatcher(t, fastOpts(w1, w2))
	front := httptest.NewServer(NewHandler(d))
	defer front.Close()

	const n = 8
	raw, err := sweepFleetBundle(t, "gate.statevector", sweepGrid(n)).Marshal()
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(front.URL+"/v1/sweeps?profile=true", "application/json", bytes.NewReader(raw))
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: %d (%s)", resp.StatusCode, body)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.Unmarshal(body, &sub); err != nil || sub.ID == "" {
		t.Fatalf("submit body: %v (%s)", err, body)
	}

	resp, err = http.Get(front.URL + "/v1/jobs/" + sub.ID + "?wait=60s")
	if err != nil {
		t.Fatal(err)
	}
	body, _ = io.ReadAll(resp.Body)
	resp.Body.Close()
	var st struct {
		State    string  `json:"state"`
		Progress float64 `json:"progress"`
		Ranges   []struct {
			From   int    `json:"from"`
			To     int    `json:"to"`
			State  string `json:"state"`
			Worker string `json:"worker"`
		} `json:"ranges"`
		Profile *struct {
			Points         int `json:"points"`
			PointsProfiled int `json:"points_profiled"`
			TotalNs        int `json:"total_ns"`
			Kinds          []struct {
				Kind    string `json:"kind"`
				Kernels int    `json:"kernels"`
				Ns      int64  `json:"ns"`
			} `json:"kinds"`
		} `json:"profile"`
	}
	if err := json.Unmarshal(body, &st); err != nil {
		t.Fatalf("status: %v (%s)", err, body)
	}
	if st.State != "done" || st.Progress != 1 {
		t.Fatalf("status: %+v", st)
	}
	if len(st.Ranges) < 2 {
		t.Fatalf("status shows %d ranges, want the scatter's >= 2", len(st.Ranges))
	}
	covered := 0
	for _, r := range st.Ranges {
		if r.State != "done" || r.Worker == "" {
			t.Fatalf("range [%d,%d) not accounted: %+v", r.From, r.To, r)
		}
		covered += r.To - r.From
	}
	if covered != n {
		t.Fatalf("ranges cover %d points, want %d", covered, n)
	}
	if st.Profile == nil || st.Profile.Points != n || st.Profile.PointsProfiled != n {
		t.Fatalf("merged profile coverage: %+v", st.Profile)
	}
	if st.Profile.TotalNs <= 0 || len(st.Profile.Kinds) == 0 || st.Profile.Kinds[0].Kernels <= 0 {
		t.Fatalf("merged profile content: %+v", st.Profile)
	}
}

// TestProfileSurvivesReforward: the profile flag rides the re-forward
// after the owning worker dies mid-run, so the surviving worker's
// execution is profiled too and the table lands in the final status.
func TestProfileSurvivesReforward(t *testing.T) {
	fake := registerProfiledFake(t, "fake.fleet_profile_reforward")
	fake.block = make(chan struct{})
	fake.ran = make(chan struct{}, 8)
	w1, w2 := startWorker(t, 1), startWorker(t, 1)
	d := newDispatcher(t, fastOpts(w1, w2))

	st, err := d.SubmitTraced(fleetBundle(t, "fake.fleet_profile_reforward", 7), 0, "", true)
	if err != nil {
		t.Fatal(err)
	}
	<-fake.ran // executing on some worker
	running := waitState(t, d, st.ID, jobs.StateRunning)
	victim, survivor := w1, w2
	if running.Worker == w2.srv.URL {
		victim, survivor = w2, w1
	}
	victim.down.Store(true)

	<-fake.ran // second execution started on the survivor
	close(fake.block)
	fin, err := d.Wait(st.ID)
	if err != nil || fin.State != jobs.StateDone {
		t.Fatalf("after reforward: %+v %v", fin, err)
	}
	if fin.Worker != survivor.srv.URL || fin.Reforwards != 1 {
		t.Fatalf("reforward did not happen: %+v", fin)
	}
	if len(fin.Profile) == 0 {
		t.Fatal("profile lost across the re-forward")
	}
	checkProfileDoc(t, fin.Profile)
	code, body, err := d.Result(context.Background(), st.ID)
	if err != nil || code != http.StatusOK || !bytes.Contains(body, []byte(`"profile"`)) {
		t.Fatalf("result after reforward lost the profile: %d %v %s", code, err, body)
	}
}
