package fleet

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"
	"time"

	"repro/internal/algolib"
	"repro/internal/backend"
	"repro/internal/bundle"
	"repro/internal/ctxdesc"
	"repro/internal/graph"
	"repro/internal/jobs"
	"repro/internal/qdt"
	"repro/internal/result"
)

// benchFake is a near-instant engine so the round trips below measure
// dispatch overhead, not simulation time.
type benchFake struct{}

func (benchFake) Name() string { return "fake.fleet_bench" }
func (benchFake) Execute(b *bundle.Bundle) (*result.Result, error) {
	return &result.Result{
		Engine:  "fake.fleet_bench",
		Samples: 1,
		Entries: []result.Entry{{Bitstring: "0000", Count: 1}},
	}, nil
}

func benchBundleRaw(b *testing.B, seed uint64) []byte {
	b.Helper()
	reg := qdt.NewIsingVars("ising_vars", "s", 4)
	seq, err := algolib.BuildQAOA(reg, graph.Cycle(4), []float64{0.39}, []float64{1.17})
	if err != nil {
		b.Fatal(err)
	}
	bd, err := bundle.New([]*qdt.DataType{reg}, seq, ctxdesc.NewGate("fake.fleet_bench", 16, seed))
	if err != nil {
		b.Fatal(err)
	}
	raw, err := bd.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	return raw
}

// roundTrip submits one bundle and polls the same /v1 surface to the
// result — the client experience being measured.
func roundTrip(b *testing.B, base string, raw []byte) {
	b.Helper()
	resp, err := http.Post(base+"/v1/jobs", "application/json", bytes.NewReader(raw))
	if err != nil {
		b.Fatal(err)
	}
	var sub struct {
		ID string `json:"id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&sub); err != nil {
		b.Fatal(err)
	}
	resp.Body.Close()
	deadline := time.Now().Add(30 * time.Second)
	for {
		r, err := http.Get(base + "/v1/jobs/" + sub.ID + "/result")
		if err != nil {
			b.Fatal(err)
		}
		code := r.StatusCode
		r.Body.Close()
		if code == http.StatusOK {
			return
		}
		if code != http.StatusAccepted {
			b.Fatalf("result poll: %d", code)
		}
		if time.Now().After(deadline) {
			b.Fatalf("job %s never finished", sub.ID)
		}
	}
}

// BenchmarkDirectRoundTrip is the baseline: submit→result against one
// worker pool's own HTTP surface.
func BenchmarkDirectRoundTrip(b *testing.B) {
	backend.Register("fake.fleet_bench", func() backend.Backend { return benchFake{} })
	defer backend.Unregister("fake.fleet_bench")
	pool := jobs.NewPool(jobs.Options{Workers: 2, QueueDepth: 256, CacheSize: -1})
	defer pool.Close()
	srv := httptest.NewServer(jobs.NewHandler(pool))
	defer srv.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		roundTrip(b, srv.URL, benchBundleRaw(b, uint64(i)+1))
	}
}

// BenchmarkDispatchRoundTrip runs the same submit→result loop through a
// dispatcher fronting that worker — the delta against
// BenchmarkDirectRoundTrip is the fleet layer's per-job overhead (one
// forward hop plus the remote status poll cadence).
func BenchmarkDispatchRoundTrip(b *testing.B) {
	backend.Register("fake.fleet_bench", func() backend.Backend { return benchFake{} })
	defer backend.Unregister("fake.fleet_bench")
	pool := jobs.NewPool(jobs.Options{Workers: 2, QueueDepth: 256, CacheSize: -1})
	defer pool.Close()
	workerSrv := httptest.NewServer(jobs.NewHandler(pool))
	defer workerSrv.Close()
	d, err := New(Options{
		Workers:      []string{workerSrv.URL},
		PollInterval: time.Millisecond,
	})
	if err != nil {
		b.Fatal(err)
	}
	defer d.Close()
	front := httptest.NewServer(NewHandler(d))
	defer front.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		roundTrip(b, front.URL, benchBundleRaw(b, uint64(i)+1))
	}
	if s := d.Stats(); s.Failed > 0 {
		b.Fatalf("failures during bench: %+v", s)
	}
}
