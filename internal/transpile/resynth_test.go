package transpile

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/circuit"
	"repro/internal/gates"
	"repro/internal/rng"
	"repro/internal/sim"
)

func TestZYZReconstructs(t *testing.T) {
	// For random 1q unitaries U, RZ(α)·RY(β)·RZ(γ) must equal U up to
	// global phase.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		u := gates.Matrix2{{1, 0}, {0, 1}}
		names := []gates.Name{gates.H, gates.T, gates.SX, gates.RZ, gates.RY, gates.RX, gates.S, gates.X}
		for i := 0; i < 6; i++ {
			n := names[r.Intn(len(names))]
			info, _ := gates.Lookup(n)
			var params []float64
			if info.Params == 1 {
				params = []float64{r.Float64()*6 - 3}
			}
			m, err := gates.Unitary1(n, params)
			if err != nil {
				return false
			}
			u = gates.Mul2(m, u)
		}
		alpha, beta, gamma := zyz(u)
		rza, _ := gates.Unitary1(gates.RZ, []float64{alpha})
		ryb, _ := gates.Unitary1(gates.RY, []float64{beta})
		rzg, _ := gates.Unitary1(gates.RZ, []float64{gamma})
		rebuilt := gates.Mul2(rza, gates.Mul2(ryb, rzg))
		return gates.EqualUpToPhase2(rebuilt, u, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestZYZEdgeCases(t *testing.T) {
	for _, tc := range []struct {
		name gates.Name
	}{{gates.Z}, {gates.X}, {gates.I}, {gates.S}, {gates.Y}} {
		u, _ := gates.Unitary1(tc.name, nil)
		a, b, g := zyz(u)
		rza, _ := gates.Unitary1(gates.RZ, []float64{a})
		ryb, _ := gates.Unitary1(gates.RY, []float64{b})
		rzg, _ := gates.Unitary1(gates.RZ, []float64{g})
		rebuilt := gates.Mul2(rza, gates.Mul2(ryb, rzg))
		if !gates.EqualUpToPhase2(rebuilt, u, 1e-9) {
			t.Errorf("zyz(%s) does not reconstruct", tc.name)
		}
	}
}

func TestResynthesizeCompressesLongRuns(t *testing.T) {
	c := circuit.New(2, 0)
	// Ten 1q gates on qubit 0, interrupted once by a cx.
	c.H(0).T(0).SXGate(0).RZ(0.3, 0).H(0)
	c.CX(0, 1)
	c.T(0).T(0).T(0).T(0).H(0)
	out := Resynthesize(c, false)
	if out.Size() >= c.Size() {
		t.Errorf("resynthesis did not shrink: %d -> %d", c.Size(), out.Size())
	}
	// Equivalence.
	pre := circuit.New(2, 0)
	randomPrep(pre, 4)
	full := pre.Copy()
	if err := full.Compose(c); err != nil {
		t.Fatal(err)
	}
	opt := pre.Copy()
	if err := opt.Compose(out); err != nil {
		t.Fatal(err)
	}
	s1, _ := sim.Evolve(full)
	s2, _ := sim.Evolve(opt)
	if !equalUpToGlobalPhase(s1, s2, 1e-9) {
		t.Error("resynthesis changed semantics")
	}
}

func TestResynthesizeDropsIdentityRuns(t *testing.T) {
	c := circuit.New(1, 0)
	c.H(0).T(0).Gate(gates.Tdg, []int{0}).H(0) // = identity
	out := Resynthesize(c, false)
	if out.Size() != 0 {
		t.Errorf("identity run survived: %v", out.CountOps())
	}
}

func TestResynthesizeLeavesShortRunsAlone(t *testing.T) {
	c := circuit.New(1, 0)
	c.H(0).T(0)
	out := Resynthesize(c, false)
	if out.Size() != 2 {
		t.Errorf("short run rewritten: %v", out.CountOps())
	}
}

func TestOptimizeLevel3EndToEnd(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		const nq = 3
		c := circuit.New(nq, 0)
		randomPrep(c, seed^0x55)
		for i := 0; i < 25; i++ {
			switch r.Intn(6) {
			case 0:
				c.H(r.Intn(nq))
			case 1:
				c.T(r.Intn(nq))
			case 2:
				c.RZ(r.Float64()*4-2, r.Intn(nq))
			case 3:
				c.SXGate(r.Intn(nq))
			case 4:
				a := r.Intn(nq)
				c.CX(a, (a+1)%nq)
			case 5:
				c.RY(r.Float64()*3, r.Intn(nq))
			}
		}
		opt := Optimize(c, 3)
		s1, err1 := sim.Evolve(c)
		s2, err2 := sim.Evolve(opt)
		if err1 != nil || err2 != nil {
			return false
		}
		return equalUpToGlobalPhase(s1, s2, 1e-8)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

func TestLevel3ReducesVersusLevel2(t *testing.T) {
	// A gate-dense circuit where resynthesis wins.
	c := circuit.New(2, 0)
	for i := 0; i < 8; i++ {
		c.H(0).T(0).SXGate(0)
		c.H(1).T(1)
	}
	c.CX(0, 1)
	l2 := Optimize(c, 2)
	l3 := Optimize(c, 3)
	if l3.Size() >= l2.Size() {
		t.Errorf("level 3 (%d ops) not smaller than level 2 (%d ops)", l3.Size(), l2.Size())
	}
	if math.Abs(float64(l3.Depth())) == 0 {
		t.Error("level 3 emptied a non-identity circuit")
	}
}

func TestResynthesizeRespectsBarriersAndMeasures(t *testing.T) {
	c := circuit.New(1, 1)
	c.H(0).T(0).SXGate(0).RZ(0.4, 0).H(0)
	c.Measure(0, 0)
	out := Resynthesize(c, false)
	// Run must be flushed before the measurement.
	last := out.Instrs[len(out.Instrs)-1]
	if last.Op != circuit.OpMeasure {
		t.Error("measurement not last after resynthesis")
	}
	if out.Size() >= c.Size() {
		t.Errorf("run before measurement not compressed: %d -> %d", c.Size(), out.Size())
	}
}
