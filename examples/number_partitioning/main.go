// Number partitioning on the anneal path: a classic NP-hard workload
// reduced exactly to Ising form (E = (Σ w_i s_i)²), expressed as an
// ISING_PROBLEM descriptor over a typed spin register, and solved by the
// annealing backend — demonstrating that the middle layer's anneal path
// is a general optimization engine, not a Max-Cut one-trick.
package main

import (
	"fmt"
	"log"

	"repro/internal/algolib"
	"repro/internal/core"
	"repro/internal/ctxdesc"
	"repro/internal/ising"
	"repro/internal/qdt"
)

func main() {
	// A 12-item instance with a perfect split (total 96, target 48).
	weights := []float64{3, 14, 9, 7, 11, 4, 6, 13, 8, 5, 12, 4}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	fmt.Printf("partition %v (total %.0f) into halves of equal sum\n", weights, total)

	model, err := ising.NumberPartitioning(weights)
	if err != nil {
		log.Fatal(err)
	}
	gs := model.BruteForce()
	fmt.Printf("brute force: best imbalance = %.0f (%d optimal assignments)\n\n",
		ising.PartitionDifference(gs.Energy), len(gs.Masks))

	reg := qdt.NewIsingVars("items", "s", len(weights))
	prog := core.NewProgram()
	if err := prog.AddRegister(reg); err != nil {
		log.Fatal(err)
	}
	op, err := algolib.NewIsingProblem(reg, model)
	if err != nil {
		log.Fatal(err)
	}
	if err := prog.Append(op); err != nil {
		log.Fatal(err)
	}

	ctx := ctxdesc.NewAnneal("anneal.sa", 200, 11)
	ctx.Anneal.Sweeps = 2000
	res, err := prog.Run(ctx)
	if err != nil {
		log.Fatal(err)
	}
	res.Sort()
	fmt.Println("annealer results (200 reads):")
	shown := 0
	for _, e := range res.Entries {
		if shown >= 4 {
			break
		}
		sumA := 0.0
		for i, w := range weights {
			if e.Index>>uint(i)&1 == 1 {
				sumA += w
			}
		}
		fmt.Printf("  %s  count=%-4d sides %.0f/%.0f  imbalance=%.0f\n",
			e.Bitstring, e.Count, sumA, total-sumA, ising.PartitionDifference(e.Energy))
		shown++
	}
	top, err := res.Top()
	if err != nil {
		log.Fatal(err)
	}
	if ising.PartitionDifference(top.Energy) == ising.PartitionDifference(gs.Energy) {
		fmt.Println("\nannealer found an optimal partition")
	} else {
		fmt.Println("\nannealer missed the optimum on this run (increase reads/sweeps)")
	}
}
