package sim

import (
	"fmt"
	"math"
	"math/rand"
	"reflect"
	"runtime"
	"sort"
	"testing"

	"repro/internal/circuit"
	"repro/internal/gates"
	"repro/internal/rng"
)

// This file is the SoA-vs-complex128 parity suite for the split-plane
// amplitude layout: a self-contained []complex128 reference simulator
// mirrors the engine's per-gate semantics, and the tests check the split
// kernels against it — at 1e-9 over random mixed circuits on every kernel
// class and shard grant, and bit-for-bit where the arithmetic grouping
// contract makes exact equality a theorem rather than a hope.

// ---- complex128 reference simulator ----

func refNew(n int) []complex128 {
	a := make([]complex128, 1<<n)
	a[0] = 1
	return a
}

func refApply1(a []complex128, m gates.Matrix2, q int) {
	stride := 1 << q
	low := stride - 1
	m00, m01, m10, m11 := m[0][0], m[0][1], m[1][0], m[1][1]
	for p := 0; p < len(a)/2; p++ {
		i := (p&^low)<<1 | p&low
		j := i | stride
		a0, a1 := a[i], a[j]
		a[i] = m00*a0 + m01*a1
		a[j] = m10*a0 + m11*a1
	}
}

// refApply2 mirrors State.Apply2 exactly, including the SWAP-conjugation
// reorder for q0 > q1, so the quad summation order matches the engine's.
func refApply2(a []complex128, m gates.Matrix4, q0, q1 int) {
	if q0 > q1 {
		perm := [4]int{0, 2, 1, 3}
		var sm gates.Matrix4
		for i := 0; i < 4; i++ {
			for j := 0; j < 4; j++ {
				sm[i][j] = m[perm[i]][perm[j]]
			}
		}
		m = sm
		q0, q1 = q1, q0
	}
	maskLo, maskHi := 1<<q0, 1<<q1
	lowLo, lowHi := maskLo-1, maskHi-1
	for c := 0; c < len(a)/4; c++ {
		x := (c&^lowLo)<<1 | c&lowLo
		i := (x&^lowHi)<<1 | x&lowHi
		j := i | maskLo
		k := i | maskHi
		l := j | maskHi
		a0, a1, a2, a3 := a[i], a[j], a[k], a[l]
		a[i] = m[0][0]*a0 + m[0][1]*a1 + m[0][2]*a2 + m[0][3]*a3
		a[j] = m[1][0]*a0 + m[1][1]*a1 + m[1][2]*a2 + m[1][3]*a3
		a[k] = m[2][0]*a0 + m[2][1]*a1 + m[2][2]*a2 + m[2][3]*a3
		a[l] = m[3][0]*a0 + m[3][1]*a1 + m[3][2]*a2 + m[3][3]*a3
	}
}

func refCtrlPerm(a []complex128, ones, zeros []int, flip int) {
	oneMask, zeroMask := 0, 0
	for _, q := range ones {
		oneMask |= 1 << q
	}
	for _, q := range zeros {
		zeroMask |= 1 << q
	}
	for i := range a {
		if i&oneMask == oneMask && i&zeroMask == 0 {
			j := i ^ flip
			a[i], a[j] = a[j], a[i]
		}
	}
}

func refCtrlPhase(a []complex128, qubits []int, ph complex128) {
	mask := 0
	for _, q := range qubits {
		mask |= 1 << q
	}
	for i := range a {
		if i&mask == mask {
			a[i] *= ph
		}
	}
}

func refDiagonal(a []complex128, qubits []int, phases []complex128) {
	for i := range a {
		local := 0
		for k, q := range qubits {
			if i>>q&1 == 1 {
				local |= 1 << k
			}
		}
		a[i] *= phases[local]
	}
}

func refInstruction(t *testing.T, a []complex128, ins circuit.Instruction) {
	t.Helper()
	switch ins.Op {
	case circuit.OpGate:
		switch ins.Gate {
		case gates.CX:
			refCtrlPerm(a, []int{ins.Qubits[0]}, []int{ins.Qubits[1]}, 1<<ins.Qubits[1])
		case gates.CZ:
			refCtrlPhase(a, ins.Qubits, -1)
		case gates.CP:
			refCtrlPhase(a, ins.Qubits, phaseExp(ins.Params[0]))
		case gates.SWAP:
			refCtrlPerm(a, []int{ins.Qubits[0]}, []int{ins.Qubits[1]}, 1<<ins.Qubits[0]|1<<ins.Qubits[1])
		case gates.CCX:
			refCtrlPerm(a, []int{ins.Qubits[0], ins.Qubits[1]}, []int{ins.Qubits[2]}, 1<<ins.Qubits[2])
		case gates.CSWAP:
			refCtrlPerm(a, []int{ins.Qubits[0], ins.Qubits[1]}, []int{ins.Qubits[2]},
				1<<ins.Qubits[1]|1<<ins.Qubits[2])
		default:
			m, err := gates.Unitary1(ins.Gate, ins.Params)
			if err != nil {
				t.Fatal(err)
			}
			refApply1(a, m, ins.Qubits[0])
		}
	case circuit.OpDiagonal:
		refDiagonal(a, ins.Qubits, ins.Phases)
	case circuit.OpInit:
		mask := 0
		for _, q := range ins.Qubits {
			mask |= 1 << q
		}
		// Snapshot, as the engine reads from the scratch plane: an in-place
		// gather would read already-overwritten source amplitudes.
		src := append([]complex128(nil), a...)
		for i := range a {
			local := 0
			for k, q := range ins.Qubits {
				if i>>q&1 == 1 {
					local |= 1 << k
				}
			}
			a[i] = src[i&^mask] * ins.Amps[local]
		}
	default:
		t.Fatalf("reference simulator: unhandled opcode %d", ins.Op)
	}
}

// phaseExp mirrors the engine's cmplx.Exp(complex(0, λ)) phase.
func phaseExp(lambda float64) complex128 {
	return complex(math.Cos(lambda), math.Sin(lambda))
}

// ---- random circuit generation ----

// randomMixedCircuit draws from every kernel class the engine compiles:
// fused 1Q runs, dense 4×4 (1Q folded into 2Q pairs), monomial chains,
// phase tables, and pair exchanges.
func randomMixedCircuit(r *rand.Rand, n, depth int) *circuit.Circuit {
	c := circuit.New(n, n)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	oneQ := []gates.Name{gates.H, gates.X, gates.Y, gates.Z, gates.S, gates.Sdg,
		gates.T, gates.Tdg, gates.SX, gates.RX, gates.RY, gates.RZ, gates.P}
	for d := 0; d < depth; d++ {
		switch r.Intn(8) {
		case 0, 1, 2:
			g := oneQ[r.Intn(len(oneQ))]
			q := r.Intn(n)
			info, _ := gates.Lookup(g)
			if info.Params == 1 {
				c.Gate(g, []int{q}, r.Float64()*2*math.Pi)
			} else {
				c.Gate(g, []int{q})
			}
		case 3:
			q := r.Intn(n - 1)
			c.CX(q, q+1)
		case 4:
			a, b := twoDistinct(r, n)
			switch r.Intn(3) {
			case 0:
				c.CZGate(a, b)
			case 1:
				c.CPhase(r.Float64()*2*math.Pi, a, b)
			case 2:
				c.Swap(a, b)
			}
		case 5:
			if n >= 3 {
				qs := r.Perm(n)[:3]
				if r.Intn(2) == 0 {
					c.CCX(qs[0], qs[1], qs[2])
				} else {
					c.CSwap(qs[0], qs[1], qs[2])
				}
			}
		case 6:
			// Long-range CX to hit high-stride / blocked sweeps.
			a, b := twoDistinct(r, n)
			c.CX(a, b)
		case 7:
			k := 1 + r.Intn(min(3, n))
			qs := r.Perm(n)[:k]
			phases := make([]complex128, 1<<k)
			for i := range phases {
				phases[i] = phaseExp(r.Float64() * 2 * math.Pi)
			}
			if err := c.Diagonal(qs, phases); err != nil {
				panic(err)
			}
		}
	}
	return c
}

func twoDistinct(r *rand.Rand, n int) (int, int) {
	a := r.Intn(n)
	b := r.Intn(n - 1)
	if b >= a {
		b++
	}
	return a, b
}

func maxAmpDiff(st *State, ref []complex128) float64 {
	worst := 0.0
	for i := range ref {
		d := st.Amplitude(uint64(i)) - ref[i]
		if ad := math.Hypot(real(d), imag(d)); ad > worst {
			worst = ad
		}
	}
	return worst
}

// TestSoAParityRandomCircuits runs random mixed circuits on 2–12 qubits
// through the compiled plan at shard grants {1, 4, GOMAXPROCS} and through
// the direct per-gate path, comparing every amplitude against the
// complex128 reference at 1e-9.
func TestSoAParityRandomCircuits(t *testing.T) {
	shardGrants := []int{1, 4, runtime.GOMAXPROCS(0)}
	for n := 2; n <= 12; n++ {
		r := rand.New(rand.NewSource(int64(1000 + n)))
		c := randomMixedCircuit(r, n, 30+4*n)
		ref := refNew(n)
		for _, ins := range c.Instrs {
			refInstruction(t, ref, ins)
		}
		for _, shards := range shardGrants {
			st, err := EvolveShards(c, shards)
			if err != nil {
				t.Fatalf("n=%d shards=%d: %v", n, shards, err)
			}
			if d := maxAmpDiff(st, ref); d > 1e-9 {
				t.Errorf("n=%d shards=%d: plan-vs-reference amplitude diff %g", n, shards, d)
			}
		}
		direct := mustStateQuick(n)
		for _, ins := range c.Instrs {
			if err := applyInstruction(direct, ins); err != nil {
				t.Fatalf("n=%d direct: %v", n, err)
			}
		}
		if d := maxAmpDiff(direct, ref); d > 1e-9 {
			t.Errorf("n=%d: direct-vs-reference amplitude diff %g", n, d)
		}
	}
}

// TestSoABitExactDirect pins the arithmetic grouping contract of the split
// kernels: every direct State method must produce amplitudes bit-identical
// to the complex128 reference, because each split expression groups
// exactly as Go complex arithmetic — real (m·a)ʳ = (mr·ar − mi·ai), sums
// of products associating left to right. This is what keeps sampled counts
// unchanged across the layout refactor.
func TestSoABitExactDirect(t *testing.T) {
	for n := 2; n <= 10; n += 2 {
		r := rand.New(rand.NewSource(int64(7000 + n)))
		c := randomMixedCircuit(r, n, 40)
		ref := refNew(n)
		st := mustStateQuick(n)
		for idx, ins := range c.Instrs {
			refInstruction(t, ref, ins)
			if err := applyInstruction(st, ins); err != nil {
				t.Fatal(err)
			}
			for i := range ref {
				// Exact float equality; == conflates ±0, which is the
				// contract — a skipped exact-zero term may flip a zero's
				// sign, and no probability or count can observe that.
				if got := st.Amplitude(uint64(i)); got != ref[i] {
					t.Fatalf("n=%d instr=%d amp[%d]: split %v != reference %v (exact)",
						n, idx, i, got, ref[i])
				}
			}
		}
	}
}

// exactPhaseCircuit builds a circuit whose fused kernels stay arithmetically
// exact: the state starts in an Init superposition with dyadic amplitudes
// (±2^{-n/2}, ±i·2^{-n/2}; n even, so the norm is exactly 1), and every gate
// after it is a monomial with phases in {1, −1, i, −i}. Products of such
// matrices have at most one nonzero term per entry, so fusion (Mul2/Mul4,
// diag merges) composes without rounding and compiled plan execution must
// match the per-gate reference bit-for-bit. (A Hadamard layer would not do:
// two 1/√2-scale matrices folding into one dense 4×4 put fl(s·s) into the
// fused entries, which rounds differently than sequential application.)
// This drives the monomial transposition, real-cycle and complex-cycle fast
// paths plus pair exchange and phase tables through an exact-equality check.
func exactPhaseCircuit(r *rand.Rand, n, depth int) *circuit.Circuit {
	if n%2 != 0 {
		panic("exactPhaseCircuit: n must be even for an exactly normalized dyadic Init")
	}
	c := circuit.New(n, 0)
	exact := []complex128{1, -1, 1i, -1i}
	scale := math.Ldexp(1, -n/2) // 2^{-n/2}, exact
	amps := make([]complex128, 1<<n)
	allQubits := make([]int, n)
	for q := range allQubits {
		allQubits[q] = q
	}
	for i := range amps {
		amps[i] = exact[r.Intn(len(exact))] * complex(scale, 0)
	}
	if err := c.Init(allQubits, amps); err != nil {
		panic(err)
	}
	for d := 0; d < depth; d++ {
		switch r.Intn(6) {
		case 0:
			q := r.Intn(n)
			switch r.Intn(4) {
			case 0:
				c.X(q)
			case 1:
				c.Z(q)
			case 2:
				c.S(q)
			case 3:
				c.Gate(gates.Sdg, []int{q})
			}
		case 1:
			q := r.Intn(n - 1)
			c.CX(q, q+1)
		case 2:
			a, b := twoDistinct(r, n)
			c.CX(a, b)
		case 3:
			a, b := twoDistinct(r, n)
			if r.Intn(2) == 0 {
				c.CZGate(a, b)
			} else {
				c.Swap(a, b)
			}
		case 4:
			if n >= 3 {
				qs := r.Perm(n)[:3]
				c.CCX(qs[0], qs[1], qs[2])
			}
		case 5:
			k := 1 + r.Intn(min(3, n))
			qs := r.Perm(n)[:k]
			phases := make([]complex128, 1<<k)
			for i := range phases {
				phases[i] = exact[r.Intn(len(exact))]
			}
			if err := c.Diagonal(qs, phases); err != nil {
				panic(err)
			}
		}
	}
	return c
}

// TestSoABitExactPlanExactPhases runs the exact-phase circuits through the
// compiled plan at every shard grant and demands bitwise equality with the
// per-gate complex128 reference.
func TestSoABitExactPlanExactPhases(t *testing.T) {
	shardGrants := []int{1, 4, runtime.GOMAXPROCS(0)}
	for n := 2; n <= 10; n += 2 {
		r := rand.New(rand.NewSource(int64(4000 + n)))
		c := exactPhaseCircuit(r, n, 50)
		ref := refNew(n)
		for _, ins := range c.Instrs {
			refInstruction(t, ref, ins)
		}
		for _, shards := range shardGrants {
			st, err := EvolveShards(c, shards)
			if err != nil {
				t.Fatal(err)
			}
			for i := range ref {
				// Exact float equality, ±0 conflated (see
				// TestSoABitExactDirect).
				if got := st.Amplitude(uint64(i)); got != ref[i] {
					t.Fatalf("n=%d shards=%d amp[%d]: plan %v != reference %v (exact)",
						n, shards, i, got, ref[i])
				}
			}
		}
	}
}

// TestRunCountsMatchTwoPassReference checks end to end that the sampling
// stage on the split planes reproduces, bit for bit, the counts obtained
// by sampling the two-pass reference CDF (the PR 4 fixed-block build) with
// the same seed — across shard grants {1, 4, GOMAXPROCS}.
func TestRunCountsMatchTwoPassReference(t *testing.T) {
	const shots = 2000
	const seed = 99
	r := rand.New(rand.NewSource(11))
	c := randomMixedCircuit(r, 9, 60)
	c.MeasureAll()
	mm := c.MeasureMap()
	qubits := make([]int, 0, len(mm))
	for q := range mm {
		qubits = append(qubits, q)
	}
	sort.Ints(qubits)

	var baseline Counts
	for _, shards := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		res, err := Run(c, Options{Shots: shots, Seed: seed, Shards: shards, KeepState: true})
		if err != nil {
			t.Fatal(err)
		}
		// Reference counts: the serial two-pass CDF over the same final
		// state, inverted with an identical RNG stream.
		cdf, acc, lastPos := referenceCDF(res.Final)
		want := Counts{}
		rr := rng.New(seed)
		for shot := 0; shot < shots; shot++ {
			k := sampleCDF(cdf, lastPos, rr.Float64()*acc)
			want[projectRegister(k, qubits, mm, 0, nil)]++
		}
		if !reflect.DeepEqual(res.Counts, want) {
			t.Fatalf("shards=%d: counts diverge from two-pass reference CDF", shards)
		}
		if baseline == nil {
			baseline = res.Counts
		} else if !reflect.DeepEqual(res.Counts, baseline) {
			t.Fatalf("shards=%d: counts differ from shards=1 grant", shards)
		}
	}
	if err := quickSanity(baseline, shots); err != nil {
		t.Fatal(err)
	}
}

func quickSanity(counts Counts, shots int) error {
	if got := counts.TotalShots(); got != shots {
		return fmt.Errorf("total shots %d != %d", got, shots)
	}
	return nil
}
