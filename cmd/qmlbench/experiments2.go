package main

import (
	"fmt"

	"repro/internal/algolib"
	"repro/internal/bundle"
	"repro/internal/circuit"
	"repro/internal/ctxdesc"
	"repro/internal/qdt"
	"repro/internal/runtime"
	"repro/internal/transpile"
)

// runE12 sweeps the transpiler's optimization levels over the QFT(10)
// Listing-4 target — the design-choice ablation DESIGN.md calls out for
// the pass pipeline (level 3 adds single-qubit ZYZ resynthesis).
func runE12(uint64) error {
	circ, err := algolib.QFTCircuit(10, 0, true, false)
	if err != nil {
		return err
	}
	var linear [][2]int
	for i := 0; i < 9; i++ {
		linear = append(linear, [2]int{i, i + 1})
	}
	fmt.Println("optimization_level   size    cx    depth   swaps")
	for lvl := 0; lvl <= 3; lvl++ {
		res, err := transpile.Transpile(circ.Copy(), transpile.Options{
			BasisGates:        []string{"sx", "rz", "cx"},
			CouplingMap:       linear,
			OptimizationLevel: lvl,
		})
		if err != nil {
			return err
		}
		fmt.Printf("        %d           %5d  %4d   %5d   %5d\n",
			lvl, res.Stats.SizeAfter, res.Stats.TwoQAfter, res.Stats.DepthAfter, res.Stats.SwapsInserted)
	}
	fmt.Println("shape: higher levels shrink the circuit; level 2's commutation-aware pass")
	fmt.Println("and level 3's ZYZ resynthesis act after routing's swap insertion")

	// Second workload: a single-qubit-dense circuit (variational-ansatz
	// shape) where level 3's ZYZ resynthesis dominates.
	dense := circuit.New(4, 0)
	for layer := 0; layer < 6; layer++ {
		for q := 0; q < 4; q++ {
			dense.H(q)
			dense.T(q)
			dense.RZ(0.3+float64(layer)*0.1, q)
			dense.SXGate(q)
		}
		dense.CX(0, 1)
		dense.CX(2, 3)
	}
	fmt.Println("\ndense 1q-rotation ansatz (4 qubits, 6 layers):")
	fmt.Println("optimization_level   size    depth")
	for lvl := 0; lvl <= 3; lvl++ {
		res, err := transpile.Transpile(dense.Copy(), transpile.Options{
			BasisGates:        []string{"sx", "rz", "cx"},
			OptimizationLevel: lvl,
		})
		if err != nil {
			return err
		}
		fmt.Printf("        %d           %5d   %5d\n", lvl, res.Stats.SizeAfter, res.Stats.DepthAfter)
	}
	return nil
}

// runE13 sweeps stochastic-Pauli noise through the execution context on a
// fixed Grover intent — policy-side noise, untouched operators.
func runE13(seed uint64) error {
	reg := qdt.New("search", "x", 4, qdt.IntRegister, qdt.AsInt)
	seq, err := algolib.BuildGrover(reg, []uint64{11}, 0)
	if err != nil {
		return err
	}
	b, err := bundle.New([]*qdt.DataType{reg}, seq, nil)
	if err != nil {
		return err
	}
	fp, err := b.Fingerprint()
	if err != nil {
		return err
	}
	fmt.Println("per-gate error p    P(marked)   (Grover |11⟩ of 16, optimal rounds)")
	for _, p := range []float64{0, 0.002, 0.01, 0.05} {
		ctx := ctxdesc.NewGate("gate.statevector", 2048, seed)
		if p > 0 {
			ctx.Exec.Options = map[string]any{
				"noise": map[string]any{"prob_1q": p, "prob_2q": p, "readout_flip": p / 2},
			}
		}
		res, err := runtime.Submit(b.WithContext(ctx), runtime.Options{})
		if err != nil {
			return err
		}
		hit := 0
		for _, e := range res.Entries {
			if e.Index == 11 {
				hit = e.Count
			}
		}
		fmt.Printf("     %.3f           %.3f\n", p, float64(hit)/float64(res.Samples))
		got, _ := b.WithContext(ctx).Fingerprint()
		if got != fp {
			return fmt.Errorf("intent fingerprint changed under noise context")
		}
	}
	fmt.Println("shape: success decays smoothly with noise; the intent fingerprint never changes —")
	fmt.Println("this is the degradation a QEC context (E7) exists to buy back")
	return nil
}
