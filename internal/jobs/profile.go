// Kernel-granular execution profiles at the job layer. A profiled job
// (SubmitOptions.Profile, or "profile": true in the POST /v1/jobs body)
// runs with the simulator's per-kernel profiler on; the backend stores
// the resulting sim.Profile under the result's Meta["profile"], and the
// pool lifts it into the job's status document next to the span log so
// operators can see where the execute stage's time went — per kernel,
// with per-shard min/max and the imbalance ratio — without fetching the
// full result.
//
// Profiled submissions get a distinct cache key (CacheKey + "+profile"),
// so whether a status document carries a kernel table is deterministic in
// the submission: a profiled job never silently reuses an unprofiled
// run's cached result, and vice versa. Everything else — counts,
// fingerprints, shard grants — is bit-identical either way.

package jobs

import (
	"encoding/json"
	"sort"

	"repro/internal/result"
)

// profiledKeySuffix distinguishes a profiled submission's cache key from
// its unprofiled twin's.
const profiledKeySuffix = "+profile"

// profiledKey derives the content address of a profiled submission.
func profiledKey(key string, profile bool) string {
	if profile {
		return key + profiledKeySuffix
	}
	return key
}

// profileRaw extracts the result's Meta["profile"] as canonical JSON, or
// nil when the result carries none. The value is a typed *sim.Profile on
// the fresh-execution path and a generic map on results reloaded from
// disk; marshaling normalizes both into the same document.
func profileRaw(res *result.Result) json.RawMessage {
	if res == nil || res.Meta == nil {
		return nil
	}
	v, ok := res.Meta["profile"]
	if !ok || v == nil {
		return nil
	}
	raw, err := json.Marshal(v)
	if err != nil {
		return nil
	}
	return raw
}

// profileView mirrors sim.Profile's JSON shape for decoding per-point
// profiles out of sweep results without importing the simulator.
type profileView struct {
	Shards  int   `json:"shards"`
	TotalNs int64 `json:"total_ns"`
	Kernels []struct {
		Kind string `json:"kind"`
		Ns   int64  `json:"ns"`
	} `json:"kernels"`
}

// sweepKindJSON is one kernel-kind row of an aggregated sweep profile.
type sweepKindJSON struct {
	Kind    string `json:"kind"`
	Kernels int    `json:"kernels"`
	Ns      int64  `json:"ns"`
}

// sweepProfileJSON is the aggregated profile of a profiled sweep job:
// per-point kernel tables folded into per-kind totals (points share one
// compiled plan, so per-kernel rows across points would only repeat the
// same structure N times).
type sweepProfileJSON struct {
	Points         int             `json:"points"`
	PointsProfiled int             `json:"points_profiled"`
	TotalNs        int64           `json:"total_ns"`
	Kinds          []sweepKindJSON `json:"kinds"`
}

// aggregateSweepProfiles folds the per-point Meta["profile"] tables of a
// completed sweep into one per-kind summary document. Points served from
// the cache of an unprofiled run carry no profile and are counted out via
// PointsProfiled; nil when no point carried a profile.
func aggregateSweepProfiles(results []*result.Result) json.RawMessage {
	agg := map[string]*sweepKindJSON{}
	out := sweepProfileJSON{Points: len(results)}
	for _, res := range results {
		raw := profileRaw(res)
		if raw == nil {
			continue
		}
		var pv profileView
		if err := json.Unmarshal(raw, &pv); err != nil {
			continue
		}
		out.PointsProfiled++
		out.TotalNs += pv.TotalNs
		for _, k := range pv.Kernels {
			row := agg[k.Kind]
			if row == nil {
				row = &sweepKindJSON{Kind: k.Kind}
				agg[k.Kind] = row
			}
			row.Kernels++
			row.Ns += k.Ns
		}
	}
	if out.PointsProfiled == 0 {
		return nil
	}
	for _, row := range agg {
		out.Kinds = append(out.Kinds, *row)
	}
	sort.Slice(out.Kinds, func(i, j int) bool { return out.Kinds[i].Ns > out.Kinds[j].Ns })
	raw, err := json.Marshal(out)
	if err != nil {
		return nil
	}
	return raw
}
