package sim

import (
	"runtime"
	"sync"
)

// shardPool is the persistent executor behind plan execution and the
// full-sweep reductions: P long-lived workers, each owning one contiguous
// shard of whatever index space the current step sweeps. Workers stay
// parked between steps instead of being respawned per kernel (the old
// parallelFor forked and joined a fresh goroutine set per gate); do()
// broadcasts one step to every worker and returns when all have finished,
// which is the barrier between kernels.
//
// A pool with one shard runs every step inline on the caller's goroutine,
// so small states pay no synchronization at all.
type shardPool struct {
	shards int
	cmd    []chan shardStep
	done   chan struct{}
}

// shardStep is one barrier-to-barrier unit of work: fn is invoked on every
// worker with its contiguous slice [lo, hi) of [0, total).
type shardStep struct {
	total int
	fn    func(w, lo, hi int)
}

// newShardPool starts P workers (none for P = 1). Callers own the pool for
// the duration of one execution and must close() it to release the
// goroutines.
func newShardPool(shards int) *shardPool {
	if shards < 1 {
		shards = 1
	}
	p := &shardPool{shards: shards}
	if shards == 1 {
		return p
	}
	p.cmd = make([]chan shardStep, shards)
	p.done = make(chan struct{}, shards)
	for w := 0; w < shards; w++ {
		p.cmd[w] = make(chan shardStep, 1)
		go p.worker(w)
	}
	return p
}

func (p *shardPool) worker(w int) {
	for st := range p.cmd[w] {
		lo, hi := shardRange(st.total, p.shards, w)
		if lo < hi {
			st.fn(w, lo, hi)
		}
		p.done <- struct{}{}
	}
}

// do runs one step across all shards and waits for every worker to finish
// (the inter-kernel barrier). fn must treat [lo, hi) as exclusively owned;
// writes outside it race with other shards.
func (p *shardPool) do(total int, fn func(w, lo, hi int)) {
	if p.shards == 1 {
		fn(0, 0, total)
		return
	}
	st := shardStep{total: total, fn: fn}
	for _, c := range p.cmd {
		c <- st
	}
	for range p.cmd {
		<-p.done
	}
}

func (p *shardPool) close() {
	for _, c := range p.cmd {
		close(c)
	}
}

// shardRange returns worker w's contiguous slice of [0, total): the first
// total%shards workers take one extra element.
func shardRange(total, shards, w int) (lo, hi int) {
	base := total / shards
	rem := total % shards
	lo = w*base + min(w, rem)
	hi = lo + base
	if w < rem {
		hi++
	}
	return lo, hi
}

// resolveShards turns a requested shard count (0 = auto) into an effective
// one for an index space of the given size. Auto stays single-shard below
// parallelThreshold, where synchronization would dominate, and takes
// GOMAXPROCS above it. Explicit requests are honored (capped so every
// shard owns at least one amplitude pair) — the parity tests force
// multi-shard execution on tiny states this way.
func resolveShards(dim, requested int) int {
	maxShards := dim / 2
	if maxShards < 1 {
		maxShards = 1
	}
	if requested <= 0 {
		if dim < parallelThreshold {
			return 1
		}
		requested = runtime.GOMAXPROCS(0)
	}
	if requested > maxShards {
		requested = maxShards
	}
	return requested
}

// parallelSum is the fork-join reduction used by the one-shot State
// methods (Norm, ExpectationDiagonal): shard partials are summed in shard
// order, so the result is deterministic for a fixed GOMAXPROCS.
func parallelSum(n int, f func(lo, hi int) float64) float64 {
	if n < parallelThreshold {
		return f(0, n)
	}
	shards := resolveShards(n, 0)
	if shards == 1 {
		return f(0, n)
	}
	partials := make([]float64, shards)
	var wg sync.WaitGroup
	for w := 0; w < shards; w++ {
		lo, hi := shardRange(n, shards, w)
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			partials[w] = f(lo, hi)
		}(w, lo, hi)
	}
	wg.Wait()
	total := 0.0
	for _, p := range partials {
		total += p
	}
	return total
}
