package qop

import (
	"encoding/json"
	"strings"
	"testing"
)

// listing3 is the paper's Listing 3 verbatim (modulo whitespace).
const listing3 = `{
	"$schema": "qod.schema.json",
	"name": "QFT",
	"rep_kind": "QFT_TEMPLATE",
	"domain_qdt": "reg_phase",
	"codomain_qdt": "reg_phase",
	"params": {"approx_degree": 0, "do_swaps": true, "inverse": false},
	"cost_hint": {"twoq": 45, "depth": 100},
	"result_schema": {
		"basis": "Z",
		"datatype": "AS_PHASE",
		"bit_significance": "LSB_0",
		"clbit_order": [
			"reg_phase[0]","reg_phase[1]","reg_phase[2]","reg_phase[3]",
			"reg_phase[4]","reg_phase[5]","reg_phase[6]","reg_phase[7]",
			"reg_phase[8]","reg_phase[9]"
		]
	}
}`

func TestListing3Parses(t *testing.T) {
	op, err := FromJSON([]byte(listing3))
	if err != nil {
		t.Fatalf("Listing 3 rejected: %v", err)
	}
	if op.RepKind != QFTTemplate || op.DomainQDT != "reg_phase" || op.CodomainQDT != "reg_phase" {
		t.Errorf("Listing 3 parsed incorrectly: %+v", op)
	}
	if op.CostHint == nil || op.CostHint.TwoQ != 45 || op.CostHint.Depth != 100 {
		t.Errorf("cost hint = %+v, want twoq=45 depth=100", op.CostHint)
	}
	deg, err := op.ParamInt("approx_degree")
	if err != nil || deg != 0 {
		t.Errorf("approx_degree = %d, %v", deg, err)
	}
	swaps, err := op.ParamBool("do_swaps")
	if err != nil || !swaps {
		t.Errorf("do_swaps = %v, %v", swaps, err)
	}
	if err := op.Result.Validate("reg_phase", 10); err != nil {
		t.Errorf("Listing 3 result schema invalid: %v", err)
	}
}

func TestOperatorValidate(t *testing.T) {
	op := New("QFT", QFTTemplate, "reg")
	if err := op.Validate(); err != nil {
		t.Errorf("valid operator rejected: %v", err)
	}
	bad := New("", "NOT_A_KIND", "")
	bad.CodomainQDT = ""
	err := bad.Validate()
	if err == nil {
		t.Fatal("invalid operator accepted")
	}
	for _, want := range []string{"name is empty", "unknown rep_kind", "domain_qdt is empty", "codomain_qdt is empty"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("error missing %q: %v", want, err)
		}
	}
}

func TestParamAccessors(t *testing.T) {
	op := New("x", MixerRX, "r").SetParam("beta", 0.7).SetParam("n", 3).SetParam("flag", true)
	if f, err := op.ParamFloat("beta"); err != nil || f != 0.7 {
		t.Errorf("ParamFloat = %v, %v", f, err)
	}
	if n, err := op.ParamInt("n"); err != nil || n != 3 {
		t.Errorf("ParamInt = %v, %v", n, err)
	}
	if b, err := op.ParamBool("flag"); err != nil || !b {
		t.Errorf("ParamBool = %v, %v", b, err)
	}
	if _, err := op.ParamFloat("missing"); err == nil {
		t.Error("missing param accepted")
	}
	if _, err := op.ParamInt("beta"); err == nil {
		t.Error("non-integral float accepted as int")
	}
	if _, err := op.ParamBool("n"); err == nil {
		t.Error("number accepted as bool")
	}
	if f, err := op.ParamFloatDefault("missing", 1.5); err != nil || f != 1.5 {
		t.Errorf("ParamFloatDefault = %v, %v", f, err)
	}
	if b, err := op.ParamBoolDefault("missing", true); err != nil || !b {
		t.Errorf("ParamBoolDefault = %v, %v", b, err)
	}
	if _, err := op.ParamBoolDefault("n", true); err == nil {
		t.Error("present mistyped param not rejected by default accessor")
	}
}

func TestParamsAfterJSONRoundTrip(t *testing.T) {
	op := New("x", MixerRX, "r").SetParam("beta", 0.7).SetParam("layers", 2)
	b, err := json.Marshal(op)
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromJSON(b)
	if err != nil {
		t.Fatal(err)
	}
	// JSON numbers decode as float64; accessors must still work.
	if n, err := back.ParamInt("layers"); err != nil || n != 2 {
		t.Errorf("round-tripped ParamInt = %v, %v", n, err)
	}
	if f, err := back.ParamFloat("beta"); err != nil || f != 0.7 {
		t.Errorf("round-tripped ParamFloat = %v, %v", f, err)
	}
}

func TestCostHintAdd(t *testing.T) {
	a := CostHint{TwoQ: 10, OneQ: 5, Depth: 20, Ancilla: 2, CommVolume: 1, DurationNS: 100}
	b := CostHint{TwoQ: 3, OneQ: 7, Depth: 4, Ancilla: 5, DurationNS: 50}
	sum := a.Add(b)
	if sum.TwoQ != 13 || sum.OneQ != 12 || sum.Depth != 24 || sum.Ancilla != 5 ||
		sum.CommVolume != 1 || sum.DurationNS != 150 {
		t.Errorf("Add = %+v", sum)
	}
}

func TestParseBitRef(t *testing.T) {
	reg, idx, err := ParseBitRef("reg_phase[7]")
	if err != nil || reg != "reg_phase" || idx != 7 {
		t.Errorf("ParseBitRef = %q, %d, %v", reg, idx, err)
	}
	for _, bad := range []string{"", "reg", "[3]", "reg[x]", "reg[3", "reg3]"} {
		if _, _, err := ParseBitRef(bad); err == nil {
			t.Errorf("ParseBitRef(%q) accepted", bad)
		}
	}
}

func TestResultSchemaValidate(t *testing.T) {
	rs := DefaultResultSchema("r", 3, "AS_BOOL", "LSB_0")
	if err := rs.Validate("r", 3); err != nil {
		t.Errorf("default schema invalid: %v", err)
	}
	cases := []struct {
		name   string
		mutate func(*ResultSchema)
	}{
		{"bad basis", func(r *ResultSchema) { r.Basis = "W" }},
		{"bad datatype", func(r *ResultSchema) { r.Datatype = "AS_JPEG" }},
		{"bad significance", func(r *ResultSchema) { r.BitSignificance = "MIDDLE" }},
		{"wrong length", func(r *ResultSchema) { r.ClbitOrder = r.ClbitOrder[:2] }},
		{"wrong register", func(r *ResultSchema) { r.ClbitOrder[0] = "other[0]" }},
		{"out of range", func(r *ResultSchema) { r.ClbitOrder[0] = "r[9]" }},
		{"duplicate", func(r *ResultSchema) { r.ClbitOrder[1] = "r[0]" }},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			rs := DefaultResultSchema("r", 3, "AS_BOOL", "LSB_0")
			c.mutate(rs)
			if err := rs.Validate("r", 3); err == nil {
				t.Error("invalid schema accepted")
			}
		})
	}
}

func TestInvert(t *testing.T) {
	qft := New("QFT", QFTTemplate, "r").SetParam("inverse", false)
	inv, err := qft.Invert()
	if err != nil {
		t.Fatal(err)
	}
	if got, _ := inv.ParamBool("inverse"); !got {
		t.Error("QFT inversion did not flip inverse flag")
	}
	// Original untouched.
	if got, _ := qft.ParamBool("inverse"); got {
		t.Error("Invert mutated the original descriptor")
	}

	cost := New("cost", IsingCostPhase, "r").SetParam("gamma", 0.4)
	invCost, err := cost.Invert()
	if err != nil {
		t.Fatal(err)
	}
	if g, _ := invCost.ParamFloat("gamma"); g != -0.4 {
		t.Errorf("inverted gamma = %v, want -0.4", g)
	}

	meas := New("m", Measurement, "r")
	if _, err := meas.Invert(); err == nil {
		t.Error("MEASUREMENT inversion accepted")
	}
	unknown := New("p", IsingProblem, "r")
	if _, err := unknown.Invert(); err == nil {
		t.Error("ISING_PROBLEM inversion accepted (no rule)")
	}
}

func TestCloneIsDeep(t *testing.T) {
	op := New("x", MixerRX, "r").SetParam("beta", 1.0)
	cp := op.Clone()
	cp.SetParam("beta", 2.0)
	cp.Name = "y"
	if f, _ := op.ParamFloat("beta"); f != 1.0 {
		t.Error("Clone shares params map")
	}
	if op.Name != "x" {
		t.Error("Clone shares name")
	}
}

func TestMarshalDefaultsSchema(t *testing.T) {
	op := &Operator{Name: "x", RepKind: PrepUniform, DomainQDT: "r", CodomainQDT: "r"}
	b, err := json.Marshal(op)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), SchemaName) {
		t.Errorf("marshal missing schema default: %s", b)
	}
}
