package sim

import (
	"fmt"
	"sort"
	"time"

	"repro/internal/circuit"
	"repro/internal/gates"
	"repro/internal/obs"
	"repro/internal/rng"
)

// Engine stage histograms, registered process-wide: the sim layer has no
// handle on a server's registry, so it reports through obs.Default() and
// servers merge that registry into their /metrics.
var (
	simCompile = obs.Default().Histogram("sim_compile_seconds", "Circuit → fused kernel plan compile latency.", nil)
	simExecute = obs.Default().Histogram("sim_execute_seconds", "Kernel plan execution latency over the shard pool.", nil)
	simSample  = obs.Default().Histogram("sim_sample_seconds", "CDF build + shot sampling latency.", nil)
)

// observeStage records one engine stage in the process-wide histogram
// and forwards it to the per-job observer, if any.
func observeStage(h *obs.Histogram, stages func(string, time.Duration), name string, start time.Time) {
	d := time.Since(start)
	h.Observe(d)
	if stages != nil {
		stages(name, d)
	}
}

// cdfBlock is the fixed accumulation block of the sampling CDF build.
// Block boundaries — not shard boundaries — define the float summation
// order, so sampled counts are bit-identical across shard counts.
const cdfBlock = 4096

// Counts maps a classical-bit register value (clbit i = bit i of the key)
// to the number of shots observing it.
type Counts map[uint64]int

// TotalShots returns the sum of all counts.
func (c Counts) TotalShots() int {
	total := 0
	for _, n := range c {
		total += n
	}
	return total
}

// Keys returns the observed register values sorted ascending.
func (c Counts) Keys() []uint64 {
	keys := make([]uint64, 0, len(c))
	for k := range c {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })
	return keys
}

// MostFrequent returns the value with the highest count (lowest key wins
// ties, for determinism) and ok=false when no counts were recorded — the
// zero value and count are meaningless in that case. Runs in O(n) over
// the map — no sorted key pass.
func (c Counts) MostFrequent() (value uint64, count int, ok bool) {
	if len(c) == 0 {
		return 0, 0, false
	}
	bestK, bestN := uint64(0), -1
	for k, n := range c {
		if n > bestN || (n == bestN && k < bestK) {
			bestK, bestN = k, n
		}
	}
	return bestK, bestN, true
}

// Result is the outcome of executing a circuit.
type Result struct {
	Counts Counts
	Shots  int
	// Final gives access to the pre-measurement state (nil unless
	// KeepState was set), used by expectation-value helpers and tests.
	Final *State
	// Profile is the kernel-granular execution profile (nil unless
	// Options.Profile was set).
	Profile *Profile
}

// Options configure Run.
type Options struct {
	Shots     int
	Seed      uint64
	KeepState bool
	// Shards is the parallelism grant for this execution: the statevector
	// splits into this many contiguous shards owned by persistent workers.
	// 0 selects automatically (single-shard for small states, GOMAXPROCS
	// for large ones); the serving layer passes an explicit value so a
	// lone big simulation takes every core while concurrent jobs stay
	// narrow.
	Shards int
	// Stages, when non-nil, receives one callback per engine stage
	// ("compile", "execute", "sample") with its wall-clock duration — the
	// hook the jobs layer uses to attach per-job span logs. Stage timings
	// also land in the process-wide sim_*_seconds histograms regardless.
	Stages func(stage string, d time.Duration)
	// Profile opts into the kernel-granular execution profiler: per-kernel
	// wall time and per-shard sweep times, returned in Result.Profile.
	// Profiling never changes amplitudes or sampled counts — the sweep
	// bodies and shard ranges are identical either way; only timestamps
	// are taken around them.
	Profile bool
}

// Evolve applies every non-measurement instruction of the circuit to a
// fresh |0…0⟩ state and returns it: the circuit is compiled to a fused
// kernel plan and executed with an automatic shard count. Measurements
// must come last (the gate engine is a terminal-measurement simulator;
// adaptive control is future context work, as in the paper's late-binding
// discussion).
func Evolve(c *circuit.Circuit) (*State, error) {
	return EvolveShards(c, 0)
}

// EvolveShards is Evolve with an explicit shard count (0 = auto).
func EvolveShards(c *circuit.Circuit, shards int) (*State, error) {
	start := time.Now()
	pl, err := Compile(c)
	if err != nil {
		return nil, err
	}
	simCompile.Observe(time.Since(start))
	pool := newShardPool(resolveShards(1<<c.NumQubits, shards))
	defer pool.close()
	st, err := newStateOn(c.NumQubits, pool)
	if err != nil {
		return nil, err
	}
	start = time.Now()
	if err := pl.executeOn(st, pool, nil); err != nil {
		return nil, err
	}
	simExecute.Observe(time.Since(start))
	return st, nil
}

// applyInstruction is the direct per-gate path: one State method call per
// instruction, no fusion. The noise-trajectory engine uses it (noise is
// injected between gates, so gates must not fuse across injection points)
// and the parity tests check the compiled plan against it.
func applyInstruction(st *State, ins circuit.Instruction) error {
	switch ins.Op {
	case circuit.OpGate:
		switch ins.Gate {
		case gates.CX:
			return st.ApplyCX(ins.Qubits[0], ins.Qubits[1])
		case gates.CZ:
			return st.ApplyCZ(ins.Qubits[0], ins.Qubits[1])
		case gates.CP:
			return st.ApplyCP(ins.Params[0], ins.Qubits[0], ins.Qubits[1])
		case gates.SWAP:
			return st.ApplySwap(ins.Qubits[0], ins.Qubits[1])
		case gates.CCX:
			return st.ApplyCCX(ins.Qubits[0], ins.Qubits[1], ins.Qubits[2])
		case gates.CSWAP:
			return st.ApplyCSwap(ins.Qubits[0], ins.Qubits[1], ins.Qubits[2])
		default:
			m, err := gates.Unitary1(ins.Gate, ins.Params)
			if err != nil {
				return err
			}
			return st.Apply1(m, ins.Qubits[0])
		}
	case circuit.OpPermute:
		return st.ApplyPermute(ins.Qubits, ins.Perm)
	case circuit.OpInit:
		return st.ApplyInit(ins.Qubits, ins.Amps)
	case circuit.OpDiagonal:
		return st.ApplyDiagonal(ins.Qubits, ins.Phases)
	}
	return fmt.Errorf("sim: unhandled opcode %d", ins.Op)
}

// Run executes the circuit for opts.Shots shots and returns counts over
// the classical register defined by the circuit's measurements. The
// circuit is compiled once into a fused kernel plan and executed across
// opts.Shards persistent shards (0 = auto); the sampling CDF builds on
// the same shard pool. A circuit with no measurements yields empty counts
// (but still evolves, and the state is available with KeepState).
func Run(c *circuit.Circuit, opts Options) (*Result, error) {
	if opts.Shots < 0 {
		return nil, fmt.Errorf("sim: negative shot count %d", opts.Shots)
	}
	stageStart := time.Now()
	pl, err := Compile(c)
	if err != nil {
		return nil, err
	}
	observeStage(simCompile, opts.Stages, "compile", stageStart)
	return runCompiled(c, pl, opts)
}

// RunPlan is Run with a precompiled plan: the sweep path binds a
// ParamPlan per parameter point and executes each bound plan here,
// skipping recompilation. pl must have been compiled from c or from a
// bound copy of it — the measurement map and qubit count are read from
// c, and execution, CDF build, and sampling follow the exact code path
// Run takes, so counts are bit-identical to Run on the bound circuit.
func RunPlan(c *circuit.Circuit, pl *Plan, opts Options) (*Result, error) {
	if opts.Shots < 0 {
		return nil, fmt.Errorf("sim: negative shot count %d", opts.Shots)
	}
	if pl.n != c.NumQubits {
		return nil, fmt.Errorf("sim: plan compiled for %d qubits, circuit has %d", pl.n, c.NumQubits)
	}
	return runCompiled(c, pl, opts)
}

func runCompiled(c *circuit.Circuit, pl *Plan, opts Options) (*Result, error) {
	pool := newShardPool(resolveShards(1<<c.NumQubits, opts.Shards))
	defer pool.close()
	st, err := newStateOn(c.NumQubits, pool)
	if err != nil {
		return nil, err
	}
	var prof *execProfiler
	if opts.Profile {
		prof = newExecProfiler(pool.shards, len(pl.kernels))
	}
	stageStart := time.Now()
	if err := pl.executeOn(st, pool, prof); err != nil {
		return nil, err
	}
	observeStage(simExecute, opts.Stages, "execute", stageStart)
	res := &Result{Counts: Counts{}, Shots: opts.Shots}
	if opts.KeepState {
		res.Final = st
	}
	if prof != nil {
		res.Profile = prof.finish()
	}
	mm := c.MeasureMap()
	if len(mm) == 0 || opts.Shots == 0 {
		return res, nil
	}

	stageStart = time.Now()
	cdf, acc, lastPos := buildCDF(st, pool)

	qubits := make([]int, 0, len(mm))
	for q := range mm {
		qubits = append(qubits, q)
	}
	sort.Ints(qubits)

	r := rng.New(opts.Seed)
	for shot := 0; shot < opts.Shots; shot++ {
		k := sampleCDF(cdf, lastPos, r.Float64()*acc)
		res.Counts[projectRegister(k, qubits, mm, 0, nil)]++
	}
	observeStage(simSample, opts.Stages, "sample", stageStart)
	return res, nil
}

// buildCDF computes the inclusive prefix sums of the state's Born
// distribution, the total mass, and the index of the last basis state with
// positive probability. The prefix sum builds over the shard pool in
// fixed-size blocks: each block's probability mass sums left to right with
// the per-amplitude probabilities stashed into the cdf slice (computed
// exactly once — the second pass reads them back instead of re-deriving
// |amp|² for the whole state again), block offsets accumulate serially,
// and each block then overwrites its cdf slice with the running prefix
// from its exact offset. Because the block boundaries do not depend on
// the shard count, the float associativity — and therefore every sampled
// count — is bit-identical for any parallelism grant: the shard count is
// a scheduling decision, never a result change (the jobs result cache
// dedups on bundle+shots+seed alone and relies on this).
func buildCDF(st *State, pool *shardPool) (cdf []float64, acc float64, lastPos int) {
	dim := st.Dim()
	cdf = make([]float64, dim)
	nBlocks := (dim + cdfBlock - 1) / cdfBlock
	blockSum := make([]float64, nBlocks)
	blockLast := make([]int, nBlocks)
	re, im := st.re, st.im
	pool.do(nBlocks, func(_, lo, hi int) {
		for b := lo; b < hi; b++ {
			sum := 0.0
			last := -1
			base, end := b*cdfBlock, min((b+1)*cdfBlock, dim)
			// Equal-length block slices over the split planes: |amp|² is
			// the same expression, and the same float grouping, as
			// State.Probability, so the CDF — and every sampled count —
			// is unchanged by reading the planes directly.
			rr, ii := re[base:end], im[base:end:end]
			out := cdf[base:end:end]
			for k := range rr {
				p := rr[k]*rr[k] + ii[k]*ii[k]
				out[k] = p
				sum += p
				if p > 0 {
					last = base + k
				}
			}
			blockSum[b] = sum
			blockLast[b] = last
		}
	})
	for b, s := range blockSum {
		blockSum[b] = acc // reuse as the block's starting offset
		acc += s
	}
	for b := nBlocks - 1; b >= 0; b-- {
		if blockLast[b] >= 0 {
			lastPos = blockLast[b]
			break
		}
	}
	pool.do(nBlocks, func(_, lo, hi int) {
		for b := lo; b < hi; b++ {
			run := blockSum[b]
			for i := b * cdfBlock; i < min((b+1)*cdfBlock, dim); i++ {
				run += cdf[i]
				cdf[i] = run
			}
		}
	})
	return cdf, acc, lastPos
}

// sampleCDF inverts the CDF for one draw u: the first index with
// cdf[k] > u, clamped to the last positive-probability index. The clamp is
// the float-drift guard: when rounding leaves cdf's top fractionally below
// u, the search lands past every positive-probability state, and without
// the clamp the draw would assign mass to a basis state the distribution
// gives zero probability (the old guard bumped the final CDF entry, which
// is exactly that bug for an all-ones state outside the support).
// Zero-probability states inside the support have cdf[k] == cdf[k-1] and
// are correctly skipped by the strict inequality.
func sampleCDF(cdf []float64, lastPos int, u float64) uint64 {
	k := sort.Search(len(cdf), func(i int) bool { return cdf[i] > u })
	if k > lastPos {
		k = lastPos
	}
	return uint64(k)
}
