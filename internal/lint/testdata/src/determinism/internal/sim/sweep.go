// Package sim is a determinism-analyzer fixture mirroring the real
// simulation core's package-path suffix.
package sim

import (
	"math/rand"
	"time"
)

// Sweep draws from the process-global source and reseeds it from the
// wall clock — the true positives.
func Sweep() int {
	rand.Seed(time.Now().UnixNano()) // want `determinism: rand\.Seed reseeds` // want `determinism: time\.Now\(\)-derived seed`
	return rand.Intn(6)              // want `determinism: math/rand global-state call rand\.Intn`
}

// SeededOK is the near-miss: an explicitly seeded local generator is the
// sanctioned construction, so the rand.New/rand.NewSource constructors
// and the methods on the resulting *rand.Rand stay legal.
func SeededOK() int {
	r := rand.New(rand.NewSource(42))
	return r.Intn(6)
}
