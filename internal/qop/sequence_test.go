package qop

import (
	"strings"
	"testing"
)

func qaoaStack() Sequence {
	prep := New("prep", PrepUniform, "ising_vars")
	cost := New("cost", IsingCostPhase, "ising_vars").SetParam("gamma", 0.5)
	mix := New("mixer", MixerRX, "ising_vars").SetParam("beta", 0.3)
	meas := New("measure", Measurement, "ising_vars")
	meas.Result = DefaultResultSchema("ising_vars", 4, "AS_BOOL", "LSB_0")
	return Sequence{prep, cost, mix, meas}
}

func TestSequenceValidateQAOA(t *testing.T) {
	s := qaoaStack()
	if err := s.Validate(QDTWidths{"ising_vars": 4}, ValidateOptions{}); err != nil {
		t.Errorf("paper QAOA stack rejected: %v", err)
	}
}

func TestSequenceUndeclaredRegister(t *testing.T) {
	s := Sequence{New("x", PrepUniform, "ghost")}
	err := s.Validate(QDTWidths{"real": 4}, ValidateOptions{})
	if err == nil || !strings.Contains(err.Error(), "ghost") {
		t.Errorf("undeclared register not reported: %v", err)
	}
}

func TestSequenceHiddenMeasurement(t *testing.T) {
	meas := New("m", Measurement, "r")
	meas.Result = DefaultResultSchema("r", 2, "AS_BOOL", "LSB_0")
	s := Sequence{meas, New("prep", PrepUniform, "r")}
	w := QDTWidths{"r": 2}
	if err := s.Validate(w, ValidateOptions{}); err == nil {
		t.Error("hidden mid-circuit measurement accepted")
	}
	if err := s.Validate(w, ValidateOptions{AllowMidCircuit: true}); err != nil {
		t.Errorf("explicit mid-circuit measurement rejected: %v", err)
	}
}

func TestSequenceNilOperator(t *testing.T) {
	s := Sequence{nil}
	if err := s.Validate(QDTWidths{}, ValidateOptions{}); err == nil {
		t.Error("nil operator accepted")
	}
}

func TestSequenceBadResultSchemaCaught(t *testing.T) {
	meas := New("m", Measurement, "r")
	meas.Result = DefaultResultSchema("r", 3, "AS_BOOL", "LSB_0") // width mismatch vs 2
	s := Sequence{meas}
	if err := s.Validate(QDTWidths{"r": 2}, ValidateOptions{}); err == nil {
		t.Error("result schema width mismatch accepted")
	}
}

func TestTotalCostHint(t *testing.T) {
	a := New("a", PrepUniform, "r")
	a.CostHint = &CostHint{OneQ: 4, Depth: 1}
	b := New("b", IsingCostPhase, "r").SetParam("gamma", 1.0)
	b.CostHint = &CostHint{TwoQ: 8, Depth: 6}
	s := Sequence{a, b}
	total, complete := s.TotalCostHint()
	if !complete || total.OneQ != 4 || total.TwoQ != 8 || total.Depth != 7 {
		t.Errorf("TotalCostHint = %+v complete=%v", total, complete)
	}
	s = append(s, New("c", MixerRX, "r"))
	total, complete = s.TotalCostHint()
	if complete {
		t.Error("missing hint not reported")
	}
	if total.TwoQ != 8 {
		t.Errorf("partial total wrong: %+v", total)
	}
}

func TestRegistersFirstUseOrder(t *testing.T) {
	a := New("a", PrepUniform, "r1")
	b := New("b", AdderTemplate, "r2")
	b.CodomainQDT = "r3"
	s := Sequence{a, b, New("c", PrepUniform, "r1")}
	regs := s.Registers()
	want := []string{"r1", "r2", "r3"}
	if len(regs) != len(want) {
		t.Fatalf("Registers = %v, want %v", regs, want)
	}
	for i := range want {
		if regs[i] != want[i] {
			t.Fatalf("Registers = %v, want %v", regs, want)
		}
	}
}

func TestFinalMeasurement(t *testing.T) {
	s := qaoaStack()
	if m := s.FinalMeasurement(); m == nil || m.Name != "measure" {
		t.Errorf("FinalMeasurement = %v", m)
	}
	if m := (Sequence{New("p", PrepUniform, "r")}).FinalMeasurement(); m != nil {
		t.Error("non-measurement tail reported as measurement")
	}
	if m := (Sequence{}).FinalMeasurement(); m != nil {
		t.Error("empty sequence reported a measurement")
	}
}

func TestSequenceInvert(t *testing.T) {
	cost := New("cost", IsingCostPhase, "r").SetParam("gamma", 0.5)
	mix := New("mixer", MixerRX, "r").SetParam("beta", 0.25)
	s := Sequence{cost, mix}
	inv, err := s.Invert()
	if err != nil {
		t.Fatal(err)
	}
	if len(inv) != 2 {
		t.Fatalf("inverted length %d", len(inv))
	}
	// Reversed order, negated angles.
	if b, _ := inv[0].ParamFloat("beta"); b != -0.25 {
		t.Errorf("first inverted op beta = %v, want -0.25", b)
	}
	if g, _ := inv[1].ParamFloat("gamma"); g != -0.5 {
		t.Errorf("second inverted op gamma = %v, want -0.5", g)
	}
	// Sequence with a measurement cannot invert.
	if _, err := qaoaStack().Invert(); err == nil {
		t.Error("sequence with MEASUREMENT inverted")
	}
}

func TestConcatClones(t *testing.T) {
	a := Sequence{New("a", PrepUniform, "r")}
	b := Sequence{New("b", MixerRX, "r").SetParam("beta", 1.0)}
	cat := Concat(a, b)
	if len(cat) != 2 {
		t.Fatalf("Concat length %d", len(cat))
	}
	cat[0].Name = "mutated"
	if a[0].Name != "a" {
		t.Error("Concat aliased input operators")
	}
}
