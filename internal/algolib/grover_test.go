package algolib

import (
	"math"
	"testing"

	"repro/internal/sim"
)

func TestGroverSingleMarked(t *testing.T) {
	// 4-qubit search, one marked state: optimal iterations = round(π/4·4)
	// = 3, success probability ≈ 0.96.
	reg := intReg("search", 4)
	seq, err := BuildGrover(reg, []uint64{11}, 0)
	if err != nil {
		t.Fatal(err)
	}
	low, err := Lower(seq, Registers{"search": reg})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(low.Circuit, sim.Options{Shots: 2000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	frac := float64(res.Counts[11]) / 2000
	if frac < 0.90 {
		t.Errorf("marked state frequency %v, want > 0.90", frac)
	}
}

func TestGroverMultipleMarked(t *testing.T) {
	// 4 qubits, 4 marked states: optimal iterations = round(π/4·2) = 2,
	// success ≈ 1.
	reg := intReg("search", 4)
	marked := []uint64{1, 6, 9, 14}
	seq, err := BuildGrover(reg, marked, 0)
	if err != nil {
		t.Fatal(err)
	}
	low, err := Lower(seq, Registers{"search": reg})
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(low.Circuit, sim.Options{Shots: 2000, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	hits := 0
	for _, m := range marked {
		hits += res.Counts[m]
	}
	if frac := float64(hits) / 2000; frac < 0.9 {
		t.Errorf("marked-set frequency %v, want > 0.9", frac)
	}
}

func TestGroverAmplificationGrowsThenOvershoots(t *testing.T) {
	// Success probability follows sin²((2k+1)θ): it grows to the optimum
	// then decreases — the standard Grover signature.
	reg := intReg("search", 3)
	probAt := func(iters int) float64 {
		seq, err := BuildGrover(reg, []uint64{5}, iters)
		if err != nil {
			t.Fatal(err)
		}
		low, err := Lower(seq, Registers{"search": reg})
		if err != nil {
			t.Fatal(err)
		}
		st, err := sim.Evolve(low.Circuit)
		if err != nil {
			t.Fatal(err)
		}
		return st.Probability(5)
	}
	p1, p2, p4 := probAt(1), probAt(2), probAt(4)
	if !(p2 > p1) {
		t.Errorf("P(2 iters)=%v not above P(1)=%v", p2, p1)
	}
	if !(p4 < p2) {
		t.Errorf("overshoot not observed: P(4)=%v vs P(2)=%v", p4, p2)
	}
	// Analytic check at k=2, n=3, M=1: sin²(5θ), θ=asin(1/√8).
	theta := math.Asin(1 / math.Sqrt(8))
	want := math.Pow(math.Sin(5*theta), 2)
	if math.Abs(p2-want) > 1e-9 {
		t.Errorf("P(2 iters) = %v, analytic %v", p2, want)
	}
}

func TestOptimalGroverIterations(t *testing.T) {
	if k := OptimalGroverIterations(4, 1); k != 3 {
		t.Errorf("n=4 M=1: %d, want 3", k)
	}
	// M/N = 1/4: θ = π/6 and k* = 1 reaches success probability 1
	// exactly (the asymptotic π/4·√(N/M) ≈ 2 would overshoot to 0.25).
	if k := OptimalGroverIterations(4, 4); k != 1 {
		t.Errorf("n=4 M=4: %d, want 1", k)
	}
	if k := OptimalGroverIterations(2, 1); k != 1 {
		t.Errorf("n=2 M=1: %d, want 1", k)
	}
	if k := OptimalGroverIterations(4, 0); k != 0 {
		t.Errorf("M=0: %d, want 0", k)
	}
}

func TestGroverOracleValidation(t *testing.T) {
	reg := intReg("search", 3)
	if _, err := NewGroverOracle(reg, nil); err == nil {
		t.Error("empty marked set accepted")
	}
	if _, err := NewGroverOracle(reg, []uint64{8}); err == nil {
		t.Error("out-of-range marked state accepted")
	}
	if _, err := NewGroverOracle(reg, []uint64{3, 3}); err == nil {
		t.Error("duplicate marked state accepted")
	}
	if _, err := BuildGrover(reg, []uint64{1}, -1); err == nil {
		t.Error("negative iterations accepted")
	}
}
