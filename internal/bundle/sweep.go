package bundle

import (
	"fmt"
	"strings"

	"repro/internal/qop"
)

// BindPoint materializes the concrete bundle for one sweep point: every
// operator parameter holding a "$name" marker — directly or as an
// element of a list-valued parameter — is replaced by the point's value
// for that name, and the sweep context block is removed. The result is
// exactly the bundle a caller would have submitted with those concrete
// values in the first place: its intent fingerprint and result-cache
// identity match a direct concrete submission, which is what makes
// per-point sweep caching sound.
//
// The clone is copy-on-write: QDTs and operators without markers are
// shared with the template, and only marker-bearing operators get fresh
// Params maps. Callers must treat both the template and the bound bundle
// as immutable after binding (every in-tree consumer already does — the
// pipeline reads the IR without mutating it). Sharing is what keeps
// per-point binding off the sweep hot path's profile; the previous JSON
// round-trip clone dominated sweep throughput.
func (b *Bundle) BindPoint(point []float64) (*Bundle, error) {
	if b.Context == nil || b.Context.Sweep == nil {
		return nil, fmt.Errorf("bundle: BindPoint on a bundle without a sweep block")
	}
	sw := b.Context.Sweep
	if len(point) != len(sw.Params) {
		return nil, fmt.Errorf("bundle: point has %d values for %d sweep params", len(point), len(sw.Params))
	}
	values := make(map[string]float64, len(sw.Params))
	for i, name := range sw.Params {
		values[name] = point[i]
	}

	cp := *b
	ctx := *b.Context
	ctx.Sweep = nil
	cp.Context = &ctx

	subst := func(v any) (any, error) {
		s, ok := v.(string)
		if !ok || !strings.HasPrefix(s, "$") {
			return v, nil
		}
		f, known := values[strings.TrimPrefix(s, "$")]
		if !known {
			return nil, fmt.Errorf("marker %q references no sweep parameter", s)
		}
		return f, nil
	}
	isMarker := func(v any) bool {
		s, ok := v.(string)
		return ok && strings.HasPrefix(s, "$")
	}
	hasMarker := func(params map[string]any) bool {
		for _, v := range params {
			switch t := v.(type) {
			case string:
				if isMarker(t) {
					return true
				}
			case []any:
				for _, el := range t {
					if isMarker(el) {
						return true
					}
				}
			}
		}
		return false
	}

	ops := make(qop.Sequence, len(b.Operators))
	copy(ops, b.Operators)
	for i, op := range ops {
		if op.Params == nil || !hasMarker(op.Params) {
			continue
		}
		oc := *op
		oc.Params = make(map[string]any, len(op.Params))
		for key, v := range op.Params {
			switch t := v.(type) {
			case string:
				nv, err := subst(t)
				if err != nil {
					return nil, fmt.Errorf("bundle: op %q param %q: %w", op.Name, key, err)
				}
				oc.Params[key] = nv
			case []any:
				el := make([]any, len(t))
				for j, e := range t {
					nv, err := subst(e)
					if err != nil {
						return nil, fmt.Errorf("bundle: op %q param %q[%d]: %w", op.Name, key, j, err)
					}
					el[j] = nv
				}
				oc.Params[key] = el
			default:
				oc.Params[key] = v
			}
		}
		ops[i] = &oc
	}
	cp.Operators = ops

	if b.Provenance != nil {
		prov := *b.Provenance
		cp.Provenance = &prov
		fp, err := cp.Fingerprint()
		if err != nil {
			return nil, err
		}
		cp.Provenance.IntentFingerprint = fp
	}
	return &cp, nil
}
