// Package store is a lockblock fixture mirroring the journal store's
// package-path suffix, so its own mutators are in the blocking set.
package store

import (
	"os"
	"sync"
)

// Store mirrors the real journal store's shape.
type Store struct {
	mu sync.Mutex
	f  *os.File
}

// Append is a journal mutator (blocking per the lockblock contract).
func (s *Store) Append(b []byte) error {
	_, err := s.f.Write(b)
	return err
}

// FsyncUnderLock holds the store lock across the durability barrier.
func (s *Store) FsyncUnderLock() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.f.Sync() // want `lockblock: \(\*os\.File\)\.Sync \(fsync\) while s\.mu is held`
}

// AppendUnderLock calls a store mutator with the lock held.
func (s *Store) AppendUnderLock(b []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.Append(b) // want `lockblock: journal/store mutator Store\.Append while s\.mu is held`
}

// SyncOffLock is the near-miss: the lock is released before the
// barrier, the two-phase pattern the contract wants.
func (s *Store) SyncOffLock() error {
	s.mu.Lock()
	s.mu.Unlock()
	return s.f.Sync()
}
