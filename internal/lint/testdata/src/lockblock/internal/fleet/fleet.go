// Package fleet is a lockblock fixture mirroring the dispatcher's
// package-path suffix.
package fleet

import (
	"sync"
	"time"
)

// Dispatcher mirrors the real dispatcher's lock around a job table.
type Dispatcher struct {
	mu   sync.Mutex
	cond *sync.Cond
	jobs map[string]int
	ch   chan int
}

// SleepUnderLock blocks the whole table on a timer.
func (d *Dispatcher) SleepUnderLock() {
	d.mu.Lock()
	time.Sleep(time.Millisecond) // want `lockblock: time\.Sleep while d\.mu is held`
	d.mu.Unlock()
}

// SendUnderLock parks on a channel send with the lock held (the
// deferred Unlock only runs at return, so the lock is held here).
func (d *Dispatcher) SendUnderLock(v int) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.ch <- v // want `lockblock: channel send while d\.mu is held`
}

// RecvUnderLock parks on a receive with the lock held.
func (d *Dispatcher) RecvUnderLock() int {
	d.mu.Lock()
	v := <-d.ch // want `lockblock: channel receive while d\.mu is held`
	d.mu.Unlock()
	return v
}

// SelectUnderLock parks in a select with no default.
func (d *Dispatcher) SelectUnderLock() {
	d.mu.Lock()
	defer d.mu.Unlock()
	select { // want `lockblock: select with no default while d\.mu is held`
	case v := <-d.ch:
		d.jobs["x"] = v
	}
}

// UnlockFirst is the near-miss: release, block, retake — the real
// dispatcher's flush pattern.
func (d *Dispatcher) UnlockFirst() {
	d.mu.Lock()
	d.jobs["x"] = 1
	d.mu.Unlock()
	time.Sleep(time.Millisecond)
	d.mu.Lock()
	d.jobs["x"] = 2
	d.mu.Unlock()
}

// CondWait is the sanctioned block: Wait releases the lock while parked.
func (d *Dispatcher) CondWait() {
	d.mu.Lock()
	for len(d.jobs) == 0 {
		d.cond.Wait()
	}
	d.mu.Unlock()
}

// SpawnOK proves a function literal is its own lock scope: the
// goroutine body blocks, but not under d.mu.
func (d *Dispatcher) SpawnOK() {
	d.mu.Lock()
	defer d.mu.Unlock()
	go func() {
		time.Sleep(time.Millisecond)
	}()
}

// NonBlockingSelect drains with a default case, which cannot park.
func (d *Dispatcher) NonBlockingSelect() {
	d.mu.Lock()
	defer d.mu.Unlock()
	select {
	case <-d.ch:
	default:
	}
}

// IgnoredSleep demonstrates a reasoned suppression the driver honors.
func (d *Dispatcher) IgnoredSleep() {
	d.mu.Lock()
	//lint:ignore lockblock fixture proves the suppression mechanism
	time.Sleep(time.Millisecond)
	d.mu.Unlock()
}
