package jobs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"
	"time"

	"repro/internal/jobs/store"
)

func openStore(t *testing.T, dir string) *store.Store {
	t.Helper()
	s, err := store.Open(dir, store.Options{}) // SyncAlways: crash images are complete
	if err != nil {
		t.Fatal(err)
	}
	return s
}

// copyDir snapshots a store directory — the moral equivalent of the page
// cache the kernel would flush after a SIGKILL (SyncAlways means every
// acknowledged event is already in the files).
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, in); err != nil {
			out.Close()
			return err
		}
		return out.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestRestartServesTerminalHistory: a pool with a store runs jobs to
// completion; a second pool over the same directory (clean restart) must
// serve their statuses and results from disk and keep allocating fresh
// job IDs past the recovered ones.
func TestRestartServesTerminalHistory(t *testing.T) {
	fake := &fakeBackend{}
	registerFake(t, "fake.restart_hist", fake)
	dir := t.TempDir()

	s1 := openStore(t, dir)
	p1 := NewPool(Options{Workers: 2, QueueDepth: 8, Store: s1})
	idDone, err := p1.Submit(annealBundle(t, "fake.restart_hist", 50, 7))
	if err != nil {
		t.Fatal(err)
	}
	if st, err := p1.Wait(idDone); err != nil || st.State != StateDone {
		t.Fatalf("job: %v / %+v", err, st)
	}
	resBefore, err := p1.Result(idDone)
	if err != nil {
		t.Fatal(err)
	}
	idFail, err := p1.Submit(annealBundle(t, "no.such_engine", 50, 1))
	if err != nil {
		t.Fatal(err)
	}
	stFail, _ := p1.Wait(idFail)
	idCancel, idBlocked := persistCancelPair(t, p1)
	p1.Close()
	if err := s1.Close(); err != nil {
		t.Fatal(err)
	}

	s2 := openStore(t, dir)
	p2 := NewPool(Options{Workers: 2, QueueDepth: 8, Store: s2})
	defer func() { p2.Close(); s2.Close() }()

	st, err := p2.Status(idDone)
	if err != nil || st.State != StateDone || st.Engine != "fake.restart_hist" {
		t.Fatalf("recovered status: %v / %+v", err, st)
	}
	resAfter, err := p2.Result(idDone)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(resBefore.Entries, resAfter.Entries) || resBefore.Engine != resAfter.Engine {
		t.Fatalf("recovered result differs:\n before %+v\n after  %+v", resBefore, resAfter)
	}
	if st, err := p2.Status(idFail); err != nil || st.State != StateFailed || st.Error != stFail.Error {
		t.Fatalf("recovered failure: %v / %+v (want error %q)", err, st, stFail.Error)
	}
	if st, err := p2.Status(idCancel); err != nil || st.State != StateCanceled {
		t.Fatalf("recovered cancel: %v / %+v", err, st)
	}
	if st, err := p2.Wait(idBlocked); err != nil || st.State != StateDone {
		t.Fatalf("recovered completed job: %v / %+v", err, st)
	}

	// The memory cache rehydrated from disk: an identical submission is
	// served without re-executing.
	execsBefore := fake.execs.Load()
	idAgain, err := p2.Submit(annealBundle(t, "fake.restart_hist", 50, 7))
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := p2.Wait(idAgain); !st.CacheHit {
		t.Fatalf("post-restart duplicate not served from rehydrated cache: %+v", st)
	}
	if fake.execs.Load() != execsBefore {
		t.Fatal("post-restart duplicate re-executed")
	}
	if !strings.HasPrefix(idAgain, "job-") || idAgain <= idDone {
		t.Fatalf("post-restart ID %q does not continue the sequence past %q", idAgain, idDone)
	}
	stats := p2.Stats()
	if stats.Recovered != 6 || stats.Requeued != 0 {
		t.Fatalf("stats: recovered=%d requeued=%d, want 6/0 (clean shutdown left no live jobs)", stats.Recovered, stats.Requeued)
	}
}

// persistCancelPair journals a canceled job and a queued-then-completed
// job into the pool's store (both terminal before the clean shutdown) and
// returns their IDs.
func persistCancelPair(t *testing.T, p *Pool) (canceled, completed string) {
	t.Helper()
	blocker := &fakeBackend{block: make(chan struct{}), ran: make(chan struct{}, 2)}
	registerFake(t, "fake.restart_pair", blocker)
	// Both workers block on b1/b2, so the jobs behind them stay queued
	// long enough to cancel one.
	b1, err := p.Submit(annealBundle(t, "fake.restart_pair", 50, 1))
	if err != nil {
		t.Fatal(err)
	}
	b2, err := p.Submit(annealBundle(t, "fake.restart_pair", 50, 2))
	if err != nil {
		t.Fatal(err)
	}
	<-blocker.ran
	<-blocker.ran
	cancelID, err := p.Submit(annealBundle(t, "fake.restart_pair", 50, 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Cancel(cancelID); err != nil {
		t.Fatal(err)
	}
	queuedID, err := p.Submit(annealBundle(t, "fake.restart_pair", 50, 4))
	if err != nil {
		t.Fatal(err)
	}
	close(blocker.block)
	for _, id := range []string{b1, b2, queuedID} {
		if st, err := p.Wait(id); err != nil || st.State != StateDone {
			t.Fatalf("job %s: %v / %+v", id, err, st)
		}
	}
	return cancelID, queuedID
}

// TestCrashRequeuesAcceptedWork is the acceptance-criterion crash test at
// the pool level: jobs queued and running when the process dies are
// requeued on restart and re-run to completion under their original IDs,
// with counts identical to what the lost run would have produced (the
// execution is deterministic in the cache key).
func TestCrashRequeuesAcceptedWork(t *testing.T) {
	// ran is buffered for every Execute across both pool lives (one
	// consumed below, one during the first life's drain, two re-runs).
	fake := &fakeBackend{block: make(chan struct{}), ran: make(chan struct{}, 8)}
	registerFake(t, "fake.crash_requeue", fake)
	dir := t.TempDir()
	crashDir := t.TempDir()

	s1 := openStore(t, dir)
	p1 := NewPool(Options{Workers: 1, QueueDepth: 8, MaxShards: 4, Store: s1})
	running, err := p1.Submit(annealBundle(t, "fake.crash_requeue", 50, 11))
	if err != nil {
		t.Fatal(err)
	}
	<-fake.ran // journaled "started", blocked inside Execute
	// The queued job pins an explicit shard grant; the pin must survive
	// the crash with it.
	queued, err := p1.SubmitWith(annealBundle(t, "fake.crash_requeue", 50, 12), SubmitOptions{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	// SIGKILL: snapshot the store directory exactly as the crash would
	// leave it — the running job never journals a terminal event.
	copyDir(t, dir, crashDir)
	close(fake.block) // hygiene: let the abandoned life drain
	p1.Close()
	s1.Close()
	execsAfterFirstLife := fake.execs.Load()

	s2 := openStore(t, crashDir)
	p2 := NewPool(Options{Workers: 1, QueueDepth: 8, MaxShards: 4, Store: s2})
	defer func() { p2.Close(); s2.Close() }()
	if st := p2.Stats(); st.Requeued != 2 {
		t.Fatalf("requeued = %d, want 2 (one running + one queued at crash)", st.Requeued)
	}
	for _, id := range []string{running, queued} {
		st, err := p2.Wait(id)
		if err != nil || st.State != StateDone {
			t.Fatalf("requeued job %s: %v / %+v", id, err, st)
		}
		if st.CacheHit || st.Coalesced {
			t.Fatalf("requeued job %s must re-execute, got %+v", id, st)
		}
	}
	if st, _ := p2.Status(queued); st.Shards != 2 {
		t.Fatalf("pinned shard grant lost across the crash: granted %d, want 2", st.Shards)
	}
	if got := fake.execs.Load() - execsAfterFirstLife; got != 2 {
		t.Fatalf("restart executed %d jobs, want 2", got)
	}
	// Determinism across the crash: the fake derives entries from the
	// seed, so the re-run result equals what the first life's completed
	// twin (same bundle, different pool) produced.
	res, err := p2.Result(running)
	if err != nil {
		t.Fatal(err)
	}
	if res.Entries[0].Index != 11%16 {
		t.Fatalf("re-run result drifted: %+v", res.Entries)
	}
}

// TestRecoveryToleratesTornJournalTail: a partial final journal line (the
// crash happened mid-append) must not fail pool construction nor drop the
// completed lines before it.
func TestRecoveryToleratesTornJournalTail(t *testing.T) {
	fake := &fakeBackend{}
	registerFake(t, "fake.torn_tail", fake)
	dir := t.TempDir()

	s1 := openStore(t, dir)
	p1 := NewPool(Options{Workers: 1, QueueDepth: 4, Store: s1})
	id, err := p1.Submit(annealBundle(t, "fake.torn_tail", 50, 5))
	if err != nil {
		t.Fatal(err)
	}
	if st, err := p1.Wait(id); err != nil || st.State != StateDone {
		t.Fatalf("job: %v / %+v", err, st)
	}
	p1.Close()
	s1.Close()

	f, err := os.OpenFile(filepath.Join(dir, "journal.jsonl"), os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteString(`{"t":"submitted","job":"job-00`); err != nil {
		t.Fatal(err)
	}
	f.Close()

	s2 := openStore(t, dir)
	p2 := NewPool(Options{Workers: 1, QueueDepth: 4, Store: s2})
	defer func() { p2.Close(); s2.Close() }()
	if st, err := p2.Status(id); err != nil || st.State != StateDone {
		t.Fatalf("recovered status after torn tail: %v / %+v", err, st)
	}
	if res, err := p2.Result(id); err != nil || len(res.Entries) != 2 {
		t.Fatalf("recovered result after torn tail: %v / %+v", err, res)
	}
	if p2.Stats().TruncatedTail != 1 {
		t.Fatal("torn tail not surfaced in stats")
	}
}

// TestCancelCoalescedWaiterDetaches is the coalesced-cancel regression
// test, direction one: canceling a duplicate attached to a running
// primary must detach exactly that waiter — the primary keeps running,
// sheds the reference (no unbounded retention under submit/cancel churn
// against a long-running primary), and every other waiter still completes
// with the primary's result.
func TestCancelCoalescedWaiterDetaches(t *testing.T) {
	fake := &fakeBackend{block: make(chan struct{}), ran: make(chan struct{}, 2)}
	registerFake(t, "fake.cancel_waiter", fake)
	pool := NewPool(Options{Workers: 1, QueueDepth: 2})
	defer pool.Close()

	primary, err := pool.Submit(annealBundle(t, "fake.cancel_waiter", 50, 9))
	if err != nil {
		t.Fatal(err)
	}
	<-fake.ran
	w1, err := pool.Submit(annealBundle(t, "fake.cancel_waiter", 50, 9))
	if err != nil {
		t.Fatal(err)
	}
	w2, err := pool.Submit(annealBundle(t, "fake.cancel_waiter", 50, 9))
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Cancel(w1); err != nil {
		t.Fatalf("canceling a coalesced duplicate: %v", err)
	}
	// The waiter is terminal immediately — not parked until the primary
	// finishes — and the primary no longer references it.
	if st, err := pool.Status(w1); err != nil || st.State != StateCanceled {
		t.Fatalf("canceled waiter: %v / %+v", err, st)
	}
	if _, err := pool.Result(w1); !errors.Is(err, ErrCanceled) {
		t.Fatalf("canceled waiter result: %v, want ErrCanceled", err)
	}
	pool.mu.Lock()
	pj := pool.jobs[primary]
	nWaiters := len(pj.waiters)
	w1Primary := pool.jobs[w1].primary
	pool.mu.Unlock()
	if nWaiters != 1 {
		t.Fatalf("primary retains %d waiters after cancel, want 1 (leak)", nWaiters)
	}
	if w1Primary != nil {
		t.Fatal("canceled waiter still backlinks the primary")
	}
	if st, err := pool.Status(primary); err != nil || st.State != StateRunning {
		t.Fatalf("canceling a waiter must not touch the primary: %v / %+v", err, st)
	}

	close(fake.block)
	for _, id := range []string{primary, w2} {
		st, err := pool.Wait(id)
		if err != nil || st.State != StateDone {
			t.Fatalf("job %s: %v / %+v", id, err, st)
		}
		if res, err := pool.Result(id); err != nil || len(res.Entries) != 2 {
			t.Fatalf("job %s result: %v / %+v", id, err, res)
		}
	}
	if st, _ := pool.Status(w1); st.State != StateCanceled {
		t.Fatalf("canceled waiter resurrected: %+v", st)
	}
	if got := fake.execs.Load(); got != 1 {
		t.Fatalf("executions = %d, want 1", got)
	}
	s := pool.Stats()
	if s.Canceled != 1 || s.Completed != 2 || s.Coalesced != 2 || s.Failed != 0 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestPrimaryTerminalPropagatesAroundCanceledWaiter is direction two: a
// primary reaching a terminal state (here: failure) must propagate it to
// every waiter still attached, while a previously canceled waiter keeps
// its canceled state — neither hung nor overwritten.
func TestPrimaryTerminalPropagatesAroundCanceledWaiter(t *testing.T) {
	fake := &fakeBackend{block: make(chan struct{}), ran: make(chan struct{}, 2), fail: true}
	registerFake(t, "fake.fail_waiters", fake)
	pool := NewPool(Options{Workers: 1, QueueDepth: 2})
	defer pool.Close()

	primary, err := pool.Submit(annealBundle(t, "fake.fail_waiters", 50, 3))
	if err != nil {
		t.Fatal(err)
	}
	<-fake.ran
	w1, err := pool.Submit(annealBundle(t, "fake.fail_waiters", 50, 3))
	if err != nil {
		t.Fatal(err)
	}
	w2, err := pool.Submit(annealBundle(t, "fake.fail_waiters", 50, 3))
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Cancel(w1); err != nil {
		t.Fatal(err)
	}
	close(fake.block)

	stP, err := pool.Wait(primary)
	if err != nil || stP.State != StateFailed || stP.Error == "" {
		t.Fatalf("primary: %v / %+v", err, stP)
	}
	stW2, err := pool.Wait(w2)
	if err != nil || stW2.State != StateFailed {
		t.Fatalf("live waiter: %v / %+v", err, stW2)
	}
	if stW2.Error != stP.Error {
		t.Fatalf("waiter error %q, want the primary's %q", stW2.Error, stP.Error)
	}
	if !stW2.Coalesced {
		t.Fatal("failed waiter lost its coalesced mark")
	}
	if st, _ := pool.Status(w1); st.State != StateCanceled || st.Error != "" {
		t.Fatalf("canceled waiter must stay canceled, got %+v", st)
	}
	if got := fake.execs.Load(); got != 1 {
		t.Fatalf("executions = %d, want 1", got)
	}
	if s := pool.Stats(); s.Failed != 2 || s.Canceled != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestDrainingPoolRejectsSubmits: Close drains in-flight and queued work,
// and a Submit racing the drain fails fast with ErrClosed instead of
// hanging on the dying queue.
func TestDrainingPoolRejectsSubmits(t *testing.T) {
	fake := &fakeBackend{block: make(chan struct{}), ran: make(chan struct{}, 2)}
	registerFake(t, "fake.drain", fake)
	pool := NewPool(Options{Workers: 1, QueueDepth: 4, CacheSize: -1})

	running, err := pool.Submit(annealBundle(t, "fake.drain", 50, 1))
	if err != nil {
		t.Fatal(err)
	}
	<-fake.ran
	queued, err := pool.Submit(annealBundle(t, "fake.drain", 50, 2))
	if err != nil {
		t.Fatal(err)
	}

	closed := make(chan struct{})
	go func() { pool.Close(); close(closed) }()
	// Wait for Close to flip the flag (it then blocks on the worker).
	for {
		pool.mu.Lock()
		c := pool.closed
		pool.mu.Unlock()
		if c {
			break
		}
		time.Sleep(time.Millisecond)
	}
	errc := make(chan error, 1)
	go func() {
		_, err := pool.Submit(annealBundle(t, "fake.drain", 50, 3))
		errc <- err
	}()
	select {
	case err := <-errc:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("submit during drain: %v, want ErrClosed", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("submit during drain hung instead of returning ErrClosed")
	}

	close(fake.block)
	<-closed
	// Draining executed the queued job rather than dropping it.
	for _, id := range []string{running, queued} {
		if st, err := pool.Status(id); err != nil || st.State != StateDone {
			t.Fatalf("job %s after drain: %v / %+v", id, err, st)
		}
	}
}

// TestListJobs covers the history listing: newest first, state filter,
// limit cap.
func TestListJobs(t *testing.T) {
	fake := &fakeBackend{block: make(chan struct{}), ran: make(chan struct{}, 2)}
	registerFake(t, "fake.list_blocked", fake)
	done := &fakeBackend{}
	registerFake(t, "fake.list_done", done)
	pool := NewPool(Options{Workers: 1, QueueDepth: 8, CacheSize: -1})
	defer pool.Close()

	runningID, err := pool.Submit(annealBundle(t, "fake.list_blocked", 50, 1))
	if err != nil {
		t.Fatal(err)
	}
	<-fake.ran
	var doneIDs []string
	for seed := uint64(2); seed < 5; seed++ {
		id, err := pool.Submit(annealBundle(t, "fake.list_done", 50, seed))
		if err != nil {
			t.Fatal(err)
		}
		doneIDs = append(doneIDs, id)
	}
	cancelID := doneIDs[2]
	if err := pool.Cancel(cancelID); err != nil {
		t.Fatal(err)
	}
	close(fake.block)
	for _, id := range append(doneIDs[:2], runningID) {
		if st, err := pool.Wait(id); err != nil || st.State != StateDone {
			t.Fatalf("job %s: %v / %+v", id, err, st)
		}
	}

	all := pool.List("", 0)
	if len(all) != 4 {
		t.Fatalf("List(all) = %d jobs, want 4", len(all))
	}
	for i := 1; i < len(all); i++ {
		if all[i-1].ID < all[i].ID {
			t.Fatalf("List not newest-first: %s before %s", all[i-1].ID, all[i].ID)
		}
	}
	if got := pool.List(StateDone, 0); len(got) != 3 {
		t.Fatalf("List(done) = %d, want 3", len(got))
	}
	if got := pool.List(StateCanceled, 0); len(got) != 1 || got[0].ID != cancelID {
		t.Fatalf("List(canceled) = %+v", got)
	}
	if got := pool.List("", 2); len(got) != 2 {
		t.Fatalf("List(limit 2) = %d, want 2", len(got))
	}
}
