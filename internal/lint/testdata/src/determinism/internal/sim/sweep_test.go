package sim

import (
	"math/rand"
	"testing"
)

// TestGlobalRandAllowed proves the contract binds production code only:
// global-source draws in _test.go files are deliberately not findings.
func TestGlobalRandAllowed(t *testing.T) {
	if rand.Intn(3) > 2 {
		t.Fatal("impossible")
	}
}
