package fleet

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"time"

	"repro/internal/bundle"
	"repro/internal/jobs"
	"repro/internal/obs"
	"repro/internal/qop"
)

// NewHandler exposes a Dispatcher over the same /v1 surface the workers
// serve, so clients cannot tell a fleet front-end from a single node:
//
//	POST   /v1/jobs             submit → routed to a worker (202 {id,state})
//	GET    /v1/jobs             fleet-merged history (?state=&limit=)
//	GET    /v1/jobs/{id}        dispatch status incl. worker + remote ID
//	GET    /v1/jobs/{id}/result result proxied from the owning worker
//	DELETE /v1/jobs/{id}        cancel, forwarded to the owning worker
//	POST   /v1/sweeps           parameter sweep → scattered range-wise (202)
//	GET    /v1/sweeps/{id}      merged, globally indexed per-point results
//	GET    /v1/engines          union of engines across healthy workers
//	GET    /v1/stats            dispatcher + per-worker + fleet aggregate
//
// POST /v1/jobs?shards=N forwards the pin to whichever worker runs the
// job. GET /v1/jobs/{id} and GET /v1/sweeps/{id} accept ?wait=<duration>
// to long-poll: the response is delayed until the job turns terminal or
// the duration (capped at 60s) elapses, whichever is first. Submissions
// are accepted as long as the dispatcher is up — if no worker is
// reachable the job queues (durably, when journaled) until the fleet
// returns.
func NewHandler(d *Dispatcher) http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		handleSubmit(d, w, r)
	})
	mux.HandleFunc("GET /v1/jobs", func(w http.ResponseWriter, r *http.Request) {
		handleList(d, w, r)
	})
	mux.HandleFunc("GET /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		wait, ok := waitParam(w, r)
		if !ok {
			return
		}
		st, err := d.WaitTimeout(r.PathValue("id"), wait)
		if err != nil {
			jobs.WriteJSON(w, http.StatusNotFound, jobs.ErrorJSON{Error: err.Error()})
			return
		}
		jobs.WriteJSON(w, http.StatusOK, statusToJSON(st))
	})
	mux.HandleFunc("POST /v1/sweeps", func(w http.ResponseWriter, r *http.Request) {
		handleSweepSubmit(d, w, r)
	})
	mux.HandleFunc("GET /v1/sweeps/{id}", func(w http.ResponseWriter, r *http.Request) {
		handleSweepResult(d, w, r)
	})
	mux.HandleFunc("GET /v1/jobs/{id}/result", func(w http.ResponseWriter, r *http.Request) {
		handleResult(d, w, r)
	})
	mux.HandleFunc("DELETE /v1/jobs/{id}", func(w http.ResponseWriter, r *http.Request) {
		handleCancel(d, w, r)
	})
	mux.HandleFunc("GET /v1/engines", func(w http.ResponseWriter, r *http.Request) {
		engines, err := d.Engines(r.Context())
		if err != nil {
			jobs.WriteJSON(w, http.StatusServiceUnavailable, jobs.ErrorJSON{Error: err.Error()})
			return
		}
		jobs.WriteJSON(w, http.StatusOK, map[string]any{"engines": engines})
	})
	mux.HandleFunc("GET /v1/stats", func(w http.ResponseWriter, r *http.Request) {
		jobs.WriteJSON(w, http.StatusOK, map[string]any{
			"dispatcher": d.Stats(),
			"workers":    d.WorkerInfos(),
			"fleet":      d.FleetStats(),
			"build":      obs.Build(),
		})
	})
	// The dispatcher's own instruments plus the process-wide registry
	// (go_*/build_info when the server registered them there) in one
	// exposition.
	mux.Handle("GET /metrics", obs.Handler(d.reg, obs.Default()))
	return obs.Recover(mux, d.log, d.reg.Counter("http_panics_total", "Handler panics recovered by the middleware."))
}

type statusJSON struct {
	ID          string      `json:"id"`
	TraceID     string      `json:"trace_id,omitempty"`
	State       jobs.State  `json:"state"`
	Engine      string      `json:"engine,omitempty"`
	Worker      string      `json:"worker,omitempty"`
	Remote      string      `json:"remote,omitempty"`
	CacheHit    bool        `json:"cache_hit"`
	Coalesced   bool        `json:"coalesced,omitempty"`
	Shards      int         `json:"shards,omitempty"`
	Reforwards  int         `json:"reforwards,omitempty"`
	Sweep       bool        `json:"sweep,omitempty"`
	Points      int         `json:"points,omitempty"`
	PointsDone  int         `json:"points_done,omitempty"`
	Progress    float64     `json:"progress,omitempty"`
	EtaMS       float64     `json:"eta_ms,omitempty"`
	Ranges      []RangeInfo `json:"ranges,omitempty"`
	Error       string      `json:"error,omitempty"`
	SubmittedAt string      `json:"submitted_at"`
	StartedAt   string      `json:"started_at,omitempty"`
	FinishedAt  string      `json:"finished_at,omitempty"`
	Spans       []obs.Span  `json:"spans,omitempty"`
	// Profile is the kernel-granular execution profile proxied from the
	// owning worker (profiled submissions only).
	Profile json.RawMessage `json:"profile,omitempty"`
}

// maxLongPoll caps ?wait= so a stuck client cannot pin a handler
// goroutine indefinitely; clients re-issue the poll to keep waiting.
const maxLongPoll = 60 * time.Second

// waitParam parses ?wait=<duration>. ok=false means the handler already
// answered 400.
func waitParam(w http.ResponseWriter, r *http.Request) (time.Duration, bool) {
	raw := r.URL.Query().Get("wait")
	if raw == "" {
		return 0, true
	}
	d, err := time.ParseDuration(raw)
	if err != nil || d < 0 {
		jobs.WriteJSON(w, http.StatusBadRequest, jobs.ErrorJSON{Error: fmt.Sprintf("fleet: invalid wait %q", raw)})
		return 0, false
	}
	if d > maxLongPoll {
		d = maxLongPoll
	}
	return d, true
}

func statusToJSON(st Status) statusJSON {
	out := statusJSON{
		ID:          st.ID,
		TraceID:     st.Trace,
		Spans:       st.Spans,
		State:       st.State,
		Engine:      st.Engine,
		Worker:      st.Worker,
		Remote:      st.Remote,
		CacheHit:    st.CacheHit,
		Coalesced:   st.Coalesced,
		Shards:      st.Shards,
		Reforwards:  st.Reforwards,
		Sweep:       st.Sweep,
		Points:      st.Points,
		PointsDone:  st.PointsDone,
		Progress:    st.Progress,
		EtaMS:       float64(st.ETA) / float64(time.Millisecond),
		Ranges:      st.Ranges,
		Profile:     st.Profile,
		Error:       st.Error,
		SubmittedAt: st.SubmittedAt.UTC().Format(time.RFC3339Nano),
	}
	if !st.StartedAt.IsZero() {
		out.StartedAt = st.StartedAt.UTC().Format(time.RFC3339Nano)
	}
	if !st.FinishedAt.IsZero() {
		out.FinishedAt = st.FinishedAt.UTC().Format(time.RFC3339Nano)
	}
	return out
}

func handleSubmit(d *Dispatcher, w http.ResponseWriter, r *http.Request) {
	defer r.Body.Close()
	raw, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, jobs.MaxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			jobs.WriteJSON(w, http.StatusRequestEntityTooLarge,
				jobs.ErrorJSON{Error: fmt.Sprintf("fleet: body exceeds %d bytes", jobs.MaxBodyBytes)})
		} else {
			jobs.WriteJSON(w, http.StatusBadRequest, jobs.ErrorJSON{Error: err.Error()})
		}
		return
	}
	b, err := bundle.FromJSON(raw, qop.ValidateOptions{AllowMidCircuit: d.opts.AllowMidCircuit})
	if err != nil {
		jobs.WriteJSON(w, http.StatusBadRequest, jobs.ErrorJSON{Error: err.Error()})
		return
	}
	pin := 0
	if rawShards := r.URL.Query().Get("shards"); rawShards != "" {
		pin, err = strconv.Atoi(rawShards)
		if err != nil || pin < 0 {
			jobs.WriteJSON(w, http.StatusBadRequest, jobs.ErrorJSON{Error: fmt.Sprintf("fleet: invalid shards %q", rawShards)})
			return
		}
	}
	st, err := d.SubmitTraced(b, pin, r.Header.Get(obs.TraceHeader), jobs.ProfileFlag(raw) || r.URL.Query().Get("profile") == "true")
	switch {
	case errors.Is(err, jobs.ErrClosed):
		jobs.WriteJSON(w, http.StatusServiceUnavailable, jobs.ErrorJSON{Error: err.Error()})
		return
	case err != nil:
		jobs.WriteJSON(w, http.StatusInternalServerError, jobs.ErrorJSON{Error: err.Error()})
		return
	}
	// Echo the accepted (possibly dispatcher-generated) trace ID so
	// callers can correlate without parsing the body.
	w.Header().Set(obs.TraceHeader, st.Trace)
	jobs.WriteJSON(w, http.StatusAccepted, map[string]any{
		"id": st.ID, "trace_id": st.Trace, "state": st.State, "cache_hit": st.CacheHit,
	})
}

func handleList(d *Dispatcher, w http.ResponseWriter, r *http.Request) {
	state := jobs.State(r.URL.Query().Get("state"))
	switch state {
	case "", jobs.StateQueued, jobs.StateRunning, jobs.StateDone, jobs.StateFailed, jobs.StateCanceled:
	default:
		jobs.WriteJSON(w, http.StatusBadRequest, jobs.ErrorJSON{Error: fmt.Sprintf("fleet: unknown state %q", state)})
		return
	}
	limit := 100
	if raw := r.URL.Query().Get("limit"); raw != "" {
		n, err := strconv.Atoi(raw)
		if err != nil || n <= 0 {
			jobs.WriteJSON(w, http.StatusBadRequest, jobs.ErrorJSON{Error: fmt.Sprintf("fleet: invalid limit %q", raw)})
			return
		}
		limit = n
	}
	sts := d.List(state, limit)
	out := struct {
		Jobs  []statusJSON `json:"jobs"`
		Count int          `json:"count"`
	}{Jobs: make([]statusJSON, len(sts)), Count: len(sts)}
	for i, st := range sts {
		out.Jobs[i] = statusToJSON(st)
	}
	jobs.WriteJSON(w, http.StatusOK, out)
}

func handleResult(d *Dispatcher, w http.ResponseWriter, r *http.Request) {
	id := r.PathValue("id")
	code, body, err := d.Result(r.Context(), id)
	if err != nil {
		switch {
		case errors.Is(err, jobs.ErrNotFound):
			jobs.WriteJSON(w, http.StatusNotFound, jobs.ErrorJSON{Error: err.Error()})
		case errors.Is(err, jobs.ErrNotFinished):
			jobs.WriteJSON(w, http.StatusAccepted, jobs.ErrorJSON{Error: err.Error()})
		case errors.Is(err, jobs.ErrCanceled):
			jobs.WriteJSON(w, http.StatusGone, jobs.ErrorJSON{Error: err.Error()})
		case errors.Is(err, ErrJobFailed):
			jobs.WriteJSON(w, http.StatusInternalServerError, jobs.ErrorJSON{Error: err.Error()})
		default:
			// Proxy/transport error reaching the owning worker.
			jobs.WriteJSON(w, http.StatusBadGateway, jobs.ErrorJSON{Error: err.Error()})
		}
		return
	}
	// Relay the worker's document (and verdict) verbatim.
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(body)
}

func handleSweepSubmit(d *Dispatcher, w http.ResponseWriter, r *http.Request) {
	defer r.Body.Close()
	raw, err := io.ReadAll(http.MaxBytesReader(nil, r.Body, jobs.MaxBodyBytes))
	if err != nil {
		var mbe *http.MaxBytesError
		if errors.As(err, &mbe) {
			jobs.WriteJSON(w, http.StatusRequestEntityTooLarge,
				jobs.ErrorJSON{Error: fmt.Sprintf("fleet: body exceeds %d bytes", jobs.MaxBodyBytes)})
		} else {
			jobs.WriteJSON(w, http.StatusBadRequest, jobs.ErrorJSON{Error: err.Error()})
		}
		return
	}
	b, err := bundle.FromJSON(raw, qop.ValidateOptions{AllowMidCircuit: d.opts.AllowMidCircuit})
	if err != nil {
		jobs.WriteJSON(w, http.StatusBadRequest, jobs.ErrorJSON{Error: err.Error()})
		return
	}
	st, err := d.SubmitSweepTraced(b, r.Header.Get(obs.TraceHeader), jobs.ProfileFlag(raw) || r.URL.Query().Get("profile") == "true")
	switch {
	case errors.Is(err, jobs.ErrClosed):
		jobs.WriteJSON(w, http.StatusServiceUnavailable, jobs.ErrorJSON{Error: err.Error()})
		return
	case err != nil:
		jobs.WriteJSON(w, http.StatusBadRequest, jobs.ErrorJSON{Error: err.Error()})
		return
	}
	w.Header().Set(obs.TraceHeader, st.Trace)
	jobs.WriteJSON(w, http.StatusAccepted, map[string]any{
		"id": st.ID, "trace_id": st.Trace, "state": st.State, "points": st.Points,
	})
}

func handleSweepResult(d *Dispatcher, w http.ResponseWriter, r *http.Request) {
	wait, ok := waitParam(w, r)
	if !ok {
		return
	}
	id := r.PathValue("id")
	st, err := d.WaitTimeout(id, wait)
	if err != nil {
		jobs.WriteJSON(w, http.StatusNotFound, jobs.ErrorJSON{Error: err.Error()})
		return
	}
	merged, engine, err := d.SweepResult(r.Context(), id)
	if err != nil {
		switch {
		case errors.Is(err, jobs.ErrNotFound):
			jobs.WriteJSON(w, http.StatusNotFound, jobs.ErrorJSON{Error: err.Error()})
		case errors.Is(err, ErrNotSweep):
			jobs.WriteJSON(w, http.StatusBadRequest, jobs.ErrorJSON{Error: err.Error()})
		case errors.Is(err, jobs.ErrNotFinished):
			// Still in flight: answer progress, mirroring the worker tier.
			jobs.WriteJSON(w, http.StatusAccepted, statusToJSON(st))
		case errors.Is(err, jobs.ErrCanceled):
			jobs.WriteJSON(w, http.StatusGone, jobs.ErrorJSON{Error: err.Error()})
		case errors.Is(err, ErrJobFailed):
			jobs.WriteJSON(w, http.StatusInternalServerError, jobs.ErrorJSON{Error: err.Error()})
		default:
			jobs.WriteJSON(w, http.StatusBadGateway, jobs.ErrorJSON{Error: err.Error()})
		}
		return
	}
	doc := map[string]any{
		"id":          st.ID,
		"trace_id":    st.Trace,
		"state":       st.State,
		"engine":      engine,
		"points":      st.Points,
		"points_done": st.PointsDone,
		"progress":    st.Progress,
		"results":     merged,
	}
	if len(st.Profile) > 0 {
		doc["profile"] = st.Profile
	}
	jobs.WriteJSON(w, http.StatusOK, doc)
}

func handleCancel(d *Dispatcher, w http.ResponseWriter, r *http.Request) {
	st, err := d.Cancel(r.Context(), r.PathValue("id"))
	if err != nil {
		switch {
		case errors.Is(err, jobs.ErrNotFound):
			jobs.WriteJSON(w, http.StatusNotFound, jobs.ErrorJSON{Error: err.Error()})
		case errors.Is(err, ErrConflict):
			jobs.WriteJSON(w, http.StatusConflict, jobs.ErrorJSON{Error: err.Error()})
		default:
			jobs.WriteJSON(w, http.StatusBadGateway, jobs.ErrorJSON{Error: err.Error()})
		}
		return
	}
	jobs.WriteJSON(w, http.StatusOK, statusToJSON(st))
}
