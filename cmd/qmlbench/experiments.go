package main

import (
	"fmt"
	"math"
	"time"

	"repro/internal/algolib"
	"repro/internal/anneal"
	"repro/internal/bundle"
	"repro/internal/comm"
	"repro/internal/ctxdesc"
	"repro/internal/graph"
	"repro/internal/ising"
	"repro/internal/jobs"
	"repro/internal/qdt"
	"repro/internal/qec"
	"repro/internal/qop"
	"repro/internal/result"
	"repro/internal/runtime"
	"repro/internal/sim"
	"repro/internal/transpile"
)

// Grid-optimal p=1 angles for the 4-cycle under this library's QAOA
// convention (e^{-iγΣZZ} cost, RX(2β) mixer): γ=π/8, β=3π/8 reach the
// theoretical p=1 optimum of expected cut 3.0.
const (
	bestGamma = 0.3926990817
	bestBeta  = 1.1780972451
)

func isingVars() *qdt.DataType { return qdt.NewIsingVars("ising_vars", "s", 4) }

func gateMaxCutBundle(samples int, seed uint64) (*bundle.Bundle, error) {
	reg := isingVars()
	seq, err := algolib.BuildQAOA(reg, graph.Cycle(4), []float64{bestGamma}, []float64{bestBeta})
	if err != nil {
		return nil, err
	}
	ctx := ctxdesc.NewGate("gate.aer_simulator", samples, seed)
	ctx.Exec.Target = &ctxdesc.Target{
		BasisGates:  []string{"sx", "rz", "cx"},
		CouplingMap: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}},
	}
	ctx.Exec.Options = map[string]any{"optimization_level": 2}
	return bundle.New([]*qdt.DataType{reg}, seq, ctx)
}

func annealMaxCutBundle(reads int, seed uint64) (*bundle.Bundle, error) {
	reg := isingVars()
	op, err := algolib.NewIsingProblem(reg, ising.FromMaxCut(graph.Cycle(4)))
	if err != nil {
		return nil, err
	}
	return bundle.New([]*qdt.DataType{reg}, qop.Sequence{op}, ctxdesc.NewAnneal("anneal.neal", reads, seed))
}

func runE1(seed uint64) error {
	b, err := gateMaxCutBundle(4096, seed)
	if err != nil {
		return err
	}
	res, err := runtime.Submit(b, runtime.Options{})
	if err != nil {
		return err
	}
	g := graph.Cycle(4)
	cut, total := 0.0, 0
	fmt.Println("outcome  count  cut")
	for _, e := range res.Entries {
		fmt.Printf("  %s   %5d    %.0f\n", e.Bitstring, e.Count, g.CutValueBits(e.Index))
		cut += g.CutValueBits(e.Index) * float64(e.Count)
		total += e.Count
	}
	fmt.Printf("expected cut (sampled, 4096 shots): %.3f   paper: ≈3.0–3.2\n", cut/float64(total))
	fmt.Printf("transpile: %+v\n", res.Meta["transpile"])

	// Variational loop, old vs new serving path: a (γ,β) angle grid that
	// the pre-sweep stack submits as one job per point — each paying its
	// own validate/lower/transpile/compile — against ONE symbolic bundle
	// through the sweep API, which compiles the plan once and binds per
	// point. Counts are bit-identical by the sweep determinism contract.
	angles := []float64{0.13, 0.26, 0.39, 0.52, 0.65, 0.79, 0.92, 1.05, 1.18}
	var points [][]float64
	for _, ga := range angles {
		for _, be := range angles {
			points = append(points, []float64{ga, be})
		}
	}
	reg := isingVars()
	g = graph.Cycle(4)
	const shots = 1024

	poolOld := jobs.NewPool(jobs.Options{Workers: 1, QueueDepth: len(points), CacheSize: -1, MaxRecords: -1})
	defer poolOld.Close()
	startOld := time.Now()
	oldIDs := make([]string, len(points))
	for i, pt := range points {
		seq, err := algolib.BuildQAOA(reg, g, []float64{pt[0]}, []float64{pt[1]})
		if err != nil {
			return err
		}
		pb, err := bundle.New([]*qdt.DataType{reg}, seq, ctxdesc.NewGate("gate.statevector", shots, seed))
		if err != nil {
			return err
		}
		if oldIDs[i], err = poolOld.Submit(pb); err != nil {
			return err
		}
	}
	oldRes := make([]*result.Result, len(points))
	for i, id := range oldIDs {
		if _, err := poolOld.Wait(id); err != nil {
			return err
		}
		if oldRes[i], err = poolOld.Result(id); err != nil {
			return err
		}
	}
	oldDur := time.Since(startOld)

	seq, err := algolib.BuildQAOASymbolic(reg, g, []string{"gamma0"}, []string{"beta0"})
	if err != nil {
		return err
	}
	sctx := ctxdesc.NewGate("gate.statevector", shots, seed)
	sctx.Sweep = &ctxdesc.Sweep{Params: []string{"gamma0", "beta0"}, Points: points}
	tmpl, err := bundle.New([]*qdt.DataType{reg}, seq, sctx)
	if err != nil {
		return err
	}
	poolNew := jobs.NewPool(jobs.Options{Workers: 1, QueueDepth: 1, CacheSize: -1, MaxRecords: -1})
	defer poolNew.Close()
	startNew := time.Now()
	sweepID, err := poolNew.SubmitSweep(tmpl)
	if err != nil {
		return err
	}
	if _, err := poolNew.Wait(sweepID); err != nil {
		return err
	}
	sweepRes, err := poolNew.SweepResult(sweepID)
	if err != nil {
		return err
	}
	newDur := time.Since(startNew)

	bestCut, bestIdx := -1.0, 0
	for i, r := range sweepRes {
		if fmt.Sprint(r.Entries) != fmt.Sprint(oldRes[i].Entries) {
			return fmt.Errorf("E1: sweep point %d counts differ from the per-job path", i)
		}
		c, n := 0.0, 0
		for _, e := range r.Entries {
			c += g.CutValueBits(e.Index) * float64(e.Count)
			n += e.Count
		}
		if avg := c / float64(n); avg > bestCut {
			bestCut, bestIdx = avg, i
		}
	}
	fmt.Printf("variational %d-point (γ,β) grid, per-point counts bit-identical across paths\n", len(points))
	fmt.Printf("  best sampled cut %.3f at γ=%.2f β=%.2f\n", bestCut, points[bestIdx][0], points[bestIdx][1])
	fmt.Printf("  old per-job loop: %.0f ms   sweep API: %.0f ms   speedup: %.1f×\n",
		float64(oldDur.Microseconds())/1000, float64(newDur.Microseconds())/1000,
		float64(oldDur.Nanoseconds())/float64(newDur.Nanoseconds()))
	return nil
}

func runE2(seed uint64) error {
	b, err := annealMaxCutBundle(1000, seed)
	if err != nil {
		return err
	}
	res, err := runtime.Submit(b, runtime.Options{})
	if err != nil {
		return err
	}
	fmt.Println("outcome  count  energy")
	for _, e := range res.Entries {
		fmt.Printf("  %s   %5d   %+.1f\n", e.Bitstring, e.Count, e.Energy)
	}
	top, err := res.Top()
	if err != nil {
		return err
	}
	fmt.Printf("best energy: %+.1f (ground truth -4.0); paper: optimal cuts 1010/0101\n", top.Energy)
	return nil
}

func runE3(seed uint64) error {
	// Exact expected cut at grid-optimal angles (no sampling noise).
	reg := isingVars()
	g := graph.Cycle(4)
	seq, err := algolib.BuildQAOA(reg, g, []float64{bestGamma}, []float64{bestBeta})
	if err != nil {
		return err
	}
	low, err := algolib.Lower(seq, algolib.Registers{"ising_vars": reg})
	if err != nil {
		return err
	}
	st, err := sim.Evolve(low.Circuit)
	if err != nil {
		return err
	}
	exact := st.ExpectationDiagonal(func(k uint64) float64 { return g.CutValueBits(k) })
	fmt.Printf("exact expected cut at (γ*, β*): %.4f   paper band: 3.0–3.2\n", exact)

	// Both backends' most frequent strings.
	gb, err := gateMaxCutBundle(4096, seed)
	if err != nil {
		return err
	}
	gres, err := runtime.Submit(gb, runtime.Options{})
	if err != nil {
		return err
	}
	ab, err := annealMaxCutBundle(1000, seed)
	if err != nil {
		return err
	}
	ares, err := runtime.Submit(ab, runtime.Options{})
	if err != nil {
		return err
	}
	gtop, err := gres.Top()
	if err != nil {
		return err
	}
	atop, err := ares.Top()
	if err != nil {
		return err
	}
	fmt.Printf("gate-path top outcome:   %s   anneal-path top outcome: %s\n", gtop.Bitstring, atop.Bitstring)
	fmt.Println("paper: both runs produce the optimal cut assignments 1010 and 0101 (cut = 4)")
	return nil
}

func runE4(seed uint64) error {
	// Listing 1: 10-qubit QFT + measure, 10000 shots. QFT|0…0⟩ is the
	// uniform superposition: 1024 outcomes, each ≈ 10000/1024 ≈ 9.8.
	reg := qdt.NewPhaseRegister("reg_phase", "phase", 10)
	qft, err := algolib.NewQFT(reg, 0, true, false)
	if err != nil {
		return err
	}
	seq := qop.Sequence{qft, algolib.NewMeasurement(reg)}
	b, err := bundle.New([]*qdt.DataType{reg}, seq, ctxdesc.NewGate("gate.aer_simulator", 10000, seed))
	if err != nil {
		return err
	}
	res, err := runtime.Submit(b, runtime.Options{})
	if err != nil {
		return err
	}
	min, max := 1<<30, 0
	for _, e := range res.Entries {
		if e.Count < min {
			min = e.Count
		}
		if e.Count > max {
			max = e.Count
		}
	}
	fmt.Printf("distinct outcomes: %d / 1024 possible\n", len(res.Entries))
	fmt.Printf("count range: [%d, %d], uniform expectation ≈ 9.77\n", min, max)
	return nil
}

func runE5(uint64) error {
	// Listing 3's cost hint vs our estimator and the realized circuit.
	reg := qdt.NewPhaseRegister("reg_phase", "phase", 10)
	qft, err := algolib.NewQFT(reg, 0, true, false)
	if err != nil {
		return err
	}
	fmt.Printf("paper cost_hint:      twoq=45  depth=100\n")
	fmt.Printf("library estimator:    twoq=%-3d depth=%d\n", qft.CostHint.TwoQ, qft.CostHint.Depth)
	circ, err := algolib.QFTCircuit(10, 0, true, false)
	if err != nil {
		return err
	}
	fmt.Printf("template realization: twoq=%-3d depth=%d (cp counted as one two-qubit gate, + %d swaps)\n",
		circ.TwoQubitCount()-5, circ.Depth(), 5)
	tr, err := transpile.Transpile(circ, transpile.Options{BasisGates: []string{"sx", "rz", "cx"}, OptimizationLevel: 2})
	if err != nil {
		return err
	}
	fmt.Printf("after {sx,rz,cx} decomposition: cx=%d depth=%d\n", tr.Stats.TwoQAfter, tr.Stats.DepthAfter)
	return nil
}

func runE6(uint64) error {
	// Listing 4: ideal all-to-all vs the linear 0–9 coupling map.
	circ, err := algolib.QFTCircuit(10, 0, true, false)
	if err != nil {
		return err
	}
	basis := []string{"sx", "rz", "cx"}
	ideal, err := transpile.Transpile(circ.Copy(), transpile.Options{BasisGates: basis, OptimizationLevel: 2})
	if err != nil {
		return err
	}
	var linear [][2]int
	for i := 0; i < 9; i++ {
		linear = append(linear, [2]int{i, i + 1})
	}
	routed, err := transpile.Transpile(circ.Copy(), transpile.Options{BasisGates: basis, CouplingMap: linear, OptimizationLevel: 2})
	if err != nil {
		return err
	}
	fmt.Println("target                cx     depth  swaps")
	fmt.Printf("all-to-all (ideal)   %4d   %5d      0\n", ideal.Stats.TwoQAfter, ideal.Stats.DepthAfter)
	fmt.Printf("linear 0–9 coupling  %4d   %5d   %4d\n", routed.Stats.TwoQAfter, routed.Stats.DepthAfter, routed.Stats.SwapsInserted)
	fmt.Println("paper: the coupling map \"forces realistic routing and basis decompositions\"")
	return nil
}

func runE7(seed uint64) error {
	fmt.Println("family      d   phys qubits/logical  rounds  logical err (p=1e-3)")
	for _, family := range []string{"repetition", "surface"} {
		for _, d := range []int{3, 5, 7, 9, 11} {
			pol := &ctxdesc.QEC{CodeFamily: family, Distance: d, PhysErrorRate: 1e-3}
			ov, err := qec.Estimate(pol, 1)
			if err != nil {
				return err
			}
			fmt.Printf("%-10s %3d   %8.0f             %3d     %.3e\n",
				family, d, ov.QubitOverhead, ov.RoundOverhead, ov.LogicalError)
		}
	}
	// Monte Carlo cross-check of the repetition closed form at d=5.
	mc, err := qec.SimulateRepetition(5, 0.05, 200000, seed)
	if err != nil {
		return err
	}
	exact, err := qec.LogicalErrorRate(&ctxdesc.QEC{CodeFamily: "repetition", Distance: 5}, 0.05)
	if err != nil {
		return err
	}
	fmt.Printf("repetition d=5 @ p=0.05: Monte Carlo %.5f vs closed form %.5f\n", mc.Rate, exact)
	fmt.Println("paper (Listing 5): distance-7 surface code; \"one logical qubit may span dozens of physical qubits\"")
	return nil
}

func runE8(uint64) error {
	fmt.Println("QFT(n) over 2 QPUs   crossing-cx   EPR pairs   classical bits")
	basis := []string{"sx", "rz", "cx"}
	for _, n := range []int{4, 6, 8, 10, 12} {
		circ, err := algolib.QFTCircuit(n, 0, true, false)
		if err != nil {
			return err
		}
		tr, err := transpile.Transpile(circ, transpile.Options{BasisGates: basis, OptimizationLevel: 1})
		if err != nil {
			return err
		}
		part, err := comm.BlockPartition(n, 2, (n+1)/2)
		if err != nil {
			return err
		}
		plan, err := comm.Analyze(tr.Circuit, part)
		if err != nil {
			return err
		}
		fmt.Printf("      n=%-2d              %5d        %5d         %5d\n",
			n, plan.CrossingGates, plan.EPRPairs, plan.ClassicalBits)
	}
	fmt.Println("paper §2: communication volume is a cost dimension schedulers need exposed")
	return nil
}

func runE9(seed uint64) error {
	reg := isingVars()
	op, err := algolib.NewIsingProblem(reg, ising.FromMaxCut(graph.Cycle(4)))
	if err != nil {
		return err
	}
	intent := qop.Sequence{op}
	contexts := map[string]*ctxdesc.Context{
		"anneal.sa (plain)":    ctxdesc.NewAnneal("anneal.sa", 100, seed),
		"anneal.sa (embedded)": embeddedCtx(seed),
		"scheduler-selected":   nil,
	}
	var first string
	for name, ctx := range contexts {
		b, err := bundle.New([]*qdt.DataType{reg}, intent, ctx)
		if err != nil {
			return err
		}
		if _, err := runtime.Submit(b, runtime.Options{}); err != nil {
			return err
		}
		fp, err := b.Fingerprint()
		if err != nil {
			return err
		}
		if first == "" {
			first = fp
		}
		match := "MATCH"
		if fp != first {
			match = "MISMATCH"
		}
		fmt.Printf("%-22s intent fingerprint %s… %s\n", name, fp[:16], match)
	}
	fmt.Println("paper: \"the same logical program runs unmodified … by swapping only the context descriptor\"")
	return nil
}

func embeddedCtx(seed uint64) *ctxdesc.Context {
	c := ctxdesc.NewAnneal("anneal.sa", 100, seed)
	c.Anneal.Embed = true
	c.Anneal.UnitCells = 1
	c.Anneal.Sweeps = 300
	return c
}

func runE10(uint64) error {
	// Expected cut vs QAOA depth p, angles grid-searched per depth. The
	// search runs twice per depth: the old loop re-lowers and re-compiles
	// every grid point (Lower + Evolve), the new loop lowers the symbolic
	// ansatz once, compiles ONE parametric plan, and Bind(point)s it —
	// only the angle-bearing kernels are re-derived per point. Both must
	// land on the same optimum (bind-invariance contract).
	reg := isingVars()
	g := graph.Cycle(4)
	regs := algolib.Registers{"ising_vars": reg}
	cutOf := func(k uint64) float64 { return g.CutValueBits(k) }
	fmt.Println("p   best expected cut   old loop     parametric plan   speedup")
	for p := 1; p <= 3; p++ {
		grid := []float64{0.13, 0.26, 0.39, 0.52, 0.65, 0.79, 0.92, 1.05, 1.18}
		if p > 1 {
			// Coarsen the grid for p ≥ 2 to keep the sweep tractable.
			grid = []float64{0.26, 0.52, 0.79, 1.05}
		}
		// Enumerate every (γ₁..γₚ, β₁..βₚ) combination.
		var points [][]float64
		var enum func(vals []float64)
		enum = func(vals []float64) {
			if len(vals) == 2*p {
				points = append(points, append([]float64(nil), vals...))
				return
			}
			for _, v := range grid {
				enum(append(vals, v))
			}
		}
		enum(nil)

		startOld := time.Now()
		bestOld := -1.0
		for _, pt := range points {
			seq, err := algolib.BuildQAOA(reg, g, pt[:p], pt[p:])
			if err != nil {
				return err
			}
			low, err := algolib.Lower(seq, regs)
			if err != nil {
				return err
			}
			st, err := sim.Evolve(low.Circuit)
			if err != nil {
				return err
			}
			if cut := st.ExpectationDiagonal(cutOf); cut > bestOld {
				bestOld = cut
			}
		}
		oldDur := time.Since(startOld)

		names := make([]string, 0, 2*p)
		gammaNames := make([]string, p)
		betaNames := make([]string, p)
		for l := 0; l < p; l++ {
			gammaNames[l] = fmt.Sprintf("gamma%d", l)
			betaNames[l] = fmt.Sprintf("beta%d", l)
		}
		names = append(append(names, gammaNames...), betaNames...)
		startNew := time.Now()
		seq, err := algolib.BuildQAOASymbolic(reg, g, gammaNames, betaNames)
		if err != nil {
			return err
		}
		low, err := algolib.LowerParametric(seq, regs, names)
		if err != nil {
			return err
		}
		plan, err := sim.CompileParametric(low.Circuit)
		if err != nil {
			return err
		}
		bestNew := -1.0
		for _, pt := range points {
			bound, err := plan.Bind(pt)
			if err != nil {
				return err
			}
			st, err := sim.NewState(plan.NumQubits())
			if err != nil {
				return err
			}
			if err := bound.Execute(st, 1); err != nil {
				return err
			}
			if cut := st.ExpectationDiagonal(cutOf); cut > bestNew {
				bestNew = cut
			}
		}
		newDur := time.Since(startNew)

		if math.Abs(bestOld-bestNew) > 1e-9 {
			return fmt.Errorf("E10: p=%d optimum differs: old %.12f, parametric %.12f", p, bestOld, bestNew)
		}
		fmt.Printf("%d   %.4f             %7.1f ms   %7.1f ms        %.1f×\n",
			p, bestOld, float64(oldDur.Microseconds())/1000, float64(newDur.Microseconds())/1000,
			float64(oldDur.Nanoseconds())/float64(newDur.Nanoseconds()))
	}
	fmt.Println("shape: p=1 reaches 3.0 (the C4 optimum at depth 1); deeper circuits close the gap to 4")
	return nil
}

func runE11(seed uint64) error {
	fmt.Println("n=12 Erdős–Rényi(0.5) Max-Cut, 50 reads each")
	g := graph.ErdosRenyi(12, 0.5, 7)
	m := ising.FromMaxCut(g)
	gs := m.BruteForce()
	fmt.Printf("true ground energy: %+.1f (cut %.0f)\n", gs.Energy, ising.CutFromEnergy(g, gs.Energy))
	fmt.Println("sampler          best    mean    P(ground)")

	row := func(name string, res *anneal.Result) {
		fmt.Printf("%-14s %+6.1f  %+6.2f   %.3f\n", name, res.Best().Energy, res.MeanEnergy(),
			res.GroundProbability(gs.Energy, 1e-9))
	}
	if r, err := anneal.RandomSample(m, 50, seed); err == nil {
		row("random", r)
	} else {
		return err
	}
	if r, err := anneal.GreedyDescent(m, 50, seed); err == nil {
		row("greedy", r)
	} else {
		return err
	}
	if r, err := anneal.TabuSearch(m, 50, 0, seed); err == nil {
		row("tabu", r)
	} else {
		return err
	}
	for _, sweeps := range []int{10, 100, 1000} {
		r, err := anneal.SampleModel(m, anneal.Params{NumReads: 50, Sweeps: sweeps, Seed: seed})
		if err != nil {
			return err
		}
		row(fmt.Sprintf("SA (%d sweeps)", sweeps), r)
	}
	fmt.Println("shape: SA dominates random/greedy and converges to ground with more sweeps")
	return nil
}
