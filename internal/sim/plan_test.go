package sim

import (
	"math"
	"math/cmplx"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/circuit"
	"repro/internal/gates"
)

// randomCircuit builds a mixed circuit over n qubits: single-qubit gates
// (parametric and fixed), the two- and three-qubit standard gates, and the
// native diagonal/permute ops, optionally opening with a native init. The
// mix is weighted toward gate runs so the fusion paths all exercise.
func randomCircuit(r *rand.Rand, n, depth int) *circuit.Circuit {
	c := circuit.New(n, n)
	oneQ := []gates.Name{
		gates.I, gates.X, gates.Y, gates.Z, gates.H, gates.S, gates.Sdg,
		gates.T, gates.Tdg, gates.SX, gates.RX, gates.RY, gates.RZ, gates.P,
	}
	pick := func(k int) []int { // k distinct qubits
		qs := r.Perm(n)[:k]
		return qs
	}
	if r.Intn(3) == 0 {
		k := 1 + r.Intn(min(2, n))
		amps := randomLocalState(r, k)
		if err := c.Init(pick(k), amps); err != nil {
			panic(err)
		}
	}
	for i := 0; i < depth; i++ {
		switch roll := r.Intn(10); {
		case roll < 4: // single-qubit gate
			name := oneQ[r.Intn(len(oneQ))]
			info, _ := gates.Lookup(name)
			var params []float64
			if info.Params == 1 {
				params = []float64{r.Float64()*4*math.Pi - 2*math.Pi}
			}
			c.Gate(name, pick(1), params...)
		case roll < 7 && n >= 2: // two-qubit gate
			qs := pick(2)
			switch r.Intn(4) {
			case 0:
				c.CX(qs[0], qs[1])
			case 1:
				c.CZGate(qs[0], qs[1])
			case 2:
				c.CPhase(r.Float64()*4*math.Pi-2*math.Pi, qs[0], qs[1])
			default:
				c.Swap(qs[0], qs[1])
			}
		case roll < 8 && n >= 3: // three-qubit gate
			qs := pick(3)
			if r.Intn(2) == 0 {
				c.CCX(qs[0], qs[1], qs[2])
			} else {
				c.CSwap(qs[0], qs[1], qs[2])
			}
		case roll < 9: // native diagonal
			k := 1 + r.Intn(min(3, n))
			qs := pick(k)
			phases := make([]complex128, 1<<k)
			for j := range phases {
				phases[j] = cmplx.Exp(complex(0, r.Float64()*2*math.Pi))
			}
			if err := c.Diagonal(qs, phases); err != nil {
				panic(err)
			}
		default: // native permutation
			k := 1 + r.Intn(min(3, n))
			qs := pick(k)
			perm := make([]uint64, 1<<k)
			for j, p := range r.Perm(1 << k) {
				perm[j] = uint64(p)
			}
			if err := c.Permute(qs, perm); err != nil {
				panic(err)
			}
		}
	}
	return c
}

func randomLocalState(r *rand.Rand, k int) []complex128 {
	amps := make([]complex128, 1<<k)
	norm := 0.0
	for i := range amps {
		amps[i] = complex(r.NormFloat64(), r.NormFloat64())
		norm += real(amps[i])*real(amps[i]) + imag(amps[i])*imag(amps[i])
	}
	scale := complex(1/math.Sqrt(norm), 0)
	for i := range amps {
		amps[i] *= scale
	}
	return amps
}

// evolveDirect is the per-gate reference path: one State method call per
// instruction, no fusion, no plan.
func evolveDirect(t *testing.T, c *circuit.Circuit) *State {
	t.Helper()
	st := mustState(t, c.NumQubits)
	for _, ins := range c.Instrs {
		if ins.Op == circuit.OpMeasure || ins.Op == circuit.OpBarrier {
			continue
		}
		if err := applyInstruction(st, ins); err != nil {
			t.Fatal(err)
		}
	}
	return st
}

func maxAmpDelta(a, b *State) float64 {
	worst := 0.0
	for k := 0; k < a.Dim(); k++ {
		if d := cmplx.Abs(a.Amplitude(uint64(k)) - b.Amplitude(uint64(k))); d > worst {
			worst = d
		}
	}
	return worst
}

// TestCompileParityRandomCircuits is the compile-vs-direct parity check:
// random mixed circuits on 2–12 qubits executed through the fused kernel
// plan must agree amplitude-wise with the direct per-gate path within
// 1e-9, at shard counts 1, 4 and GOMAXPROCS.
func TestCompileParityRandomCircuits(t *testing.T) {
	shardCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for n := 2; n <= 12; n++ {
		for trial := 0; trial < 4; trial++ {
			r := rand.New(rand.NewSource(int64(1000*n + trial)))
			depth := 10 + r.Intn(40)
			c := randomCircuit(r, n, depth)
			want := evolveDirect(t, c)
			pl, err := Compile(c)
			if err != nil {
				t.Fatalf("n=%d trial=%d: compile: %v", n, trial, err)
			}
			for _, shards := range shardCounts {
				st := mustState(t, n)
				if err := pl.Execute(st, shards); err != nil {
					t.Fatalf("n=%d trial=%d shards=%d: %v", n, trial, shards, err)
				}
				if d := maxAmpDelta(want, st); d > 1e-9 {
					t.Errorf("n=%d trial=%d shards=%d: max amplitude delta %v\n%s",
						n, trial, shards, d, c)
				}
			}
		}
	}
}

// TestEvolvePlanMatchesDirect covers the public entry points on a
// structured circuit (QFT-style phase cascade plus entanglers).
func TestEvolvePlanMatchesDirect(t *testing.T) {
	n := 6
	c := circuit.New(n, n)
	for q := 0; q < n; q++ {
		c.H(q)
		for k := q + 1; k < n; k++ {
			c.CPhase(math.Pi/float64(int(1)<<(k-q)), k, q)
		}
	}
	for q := 0; q < n-1; q++ {
		c.CX(q, q+1)
	}
	want := evolveDirect(t, c)
	for _, shards := range []int{0, 1, 3} {
		got, err := EvolveShards(c, shards)
		if err != nil {
			t.Fatal(err)
		}
		if d := maxAmpDelta(want, got); d > 1e-9 {
			t.Errorf("shards=%d: max amplitude delta %v", shards, d)
		}
	}
}

// TestCompileFuses1QRuns checks that a run of single-qubit gates on one
// qubit — including gates on other qubits in between — compiles to a
// single 2×2 kernel.
func TestCompileFuses1QRuns(t *testing.T) {
	c := circuit.New(3, 0)
	c.H(0).RZ(0.3, 0).SXGate(0) // one fused kernel on q0
	c.H(1)                      // separate kernel, commutes past q0's run
	c.RZ(0.7, 0)                // still fuses into q0's kernel
	pl, err := Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	st := pl.Stats()
	if st.Kernels != 2 {
		t.Errorf("kernels = %d, want 2 (fused q0 run + h q1); stats %+v", st.Kernels, st)
	}
	if st.Fused1Q != 3 {
		t.Errorf("fused 1q = %d, want 3", st.Fused1Q)
	}
}

// TestCompileMergesDiagonalRuns checks that a CZ/CP chain merges into
// diagonal kernels instead of one sweep per gate.
func TestCompileMergesDiagonalRuns(t *testing.T) {
	n := 6
	c := circuit.New(n, 0)
	for q := 0; q < n; q++ {
		c.CZGate(q, (q+1)%n) // ring: supports chain-overlap
	}
	c.CPhase(0.25, 0, 3)
	pl, err := Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	st := pl.Stats()
	if st.Kernels != 1 {
		t.Errorf("kernels = %d, want 1 merged diagonal (stats %+v)", st.Kernels, st)
	}
	if st.MergedDiag != n {
		t.Errorf("merged diag = %d, want %d", st.MergedDiag, n)
	}
	// And the merged kernel must still be correct.
	want := evolveDirect(t, c)
	got := mustState(t, n)
	if err := pl.Execute(got, 2); err != nil {
		t.Fatal(err)
	}
	if d := maxAmpDelta(want, got); d > 1e-12 {
		t.Errorf("merged diagonal drifted: %v", d)
	}
}

// TestCompileRepeatedCPhaseCollapses checks the no-table fast path: equal
// support controlled phases multiply in place.
func TestCompileRepeatedCPhaseCollapses(t *testing.T) {
	c := circuit.New(4, 0)
	c.CPhase(0.3, 1, 2).CPhase(0.4, 1, 2).CZGate(1, 2)
	pl, err := Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	if got := pl.Stats().Kernels; got != 1 {
		t.Errorf("kernels = %d, want 1", got)
	}
	want := evolveDirect(t, c)
	got := mustState(t, 4)
	if err := pl.Execute(got, 1); err != nil {
		t.Fatal(err)
	}
	if d := maxAmpDelta(want, got); d > 1e-12 {
		t.Errorf("collapsed phases drifted: %v", d)
	}
}

// TestCompileFuses2QChains checks the dense two-qubit path: a CX/CZ/CX
// chain on one pair with single-qubit gates sandwiched on both operands
// compiles to a single 4×4 kernel, with every source gate counted in
// Fused2Q.
func TestCompileFuses2QChains(t *testing.T) {
	c := circuit.New(3, 0)
	c.RY(0.3, 0).RY(0.5, 1) // both fold into the CX below
	c.CX(0, 1)
	c.RZ(0.7, 0) // folds into the dense kernel
	c.CZGate(0, 1)
	c.CX(1, 0)
	c.SXGate(1) // still folds
	pl, err := Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	st := pl.Stats()
	if st.Kernels != 1 {
		t.Errorf("kernels = %d, want 1 dense 4×4; stats %+v", st.Kernels, st)
	}
	if st.Fused2Q != 6 {
		t.Errorf("fused 2q = %d, want 6 (all gates but the first CX)", st.Fused2Q)
	}
	want := evolveDirect(t, c)
	got := mustState(t, 3)
	if err := pl.Execute(got, 1); err != nil {
		t.Fatal(err)
	}
	if d := maxAmpDelta(want, got); d > 1e-12 {
		t.Errorf("dense chain drifted: %v", d)
	}
}

// TestCompileLoneCXStaysSpecialized locks in the cost model: a CX with
// nothing to fold must keep its half-state subspace-exchange form rather
// than becoming a full-state dense sweep.
func TestCompileLoneCXStaysSpecialized(t *testing.T) {
	c := circuit.New(4, 0)
	c.H(2) // disjoint qubit: commutes past, must not trigger dense form
	c.CX(0, 1)
	pl, err := Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	st := pl.Stats()
	if st.Fused2Q != 0 {
		t.Errorf("fused 2q = %d, want 0 for a lone CX", st.Fused2Q)
	}
	if st.Kernels != 2 {
		t.Errorf("kernels = %d, want 2", st.Kernels)
	}
}

// TestCompileParityCXSandwich is the acceptance parity suite for the 4×4
// path: brickwork CX ladders with single-qubit gates sandwiched between
// them, checked against the direct per-gate engine at 1e-9 across shard
// counts {1, 4, GOMAXPROCS} — including high qubit pairs that exercise the
// cache-blocked sweep order.
func TestCompileParityCXSandwich(t *testing.T) {
	shardCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	for _, n := range []int{2, 5, 9, 12} {
		c := cxBrickworkCircuit(n, 3)
		// Append a chain on the two highest qubits so n ≥ 8 exercises
		// sweep2QBlocked (lower pair stride ≥ blockedStrideMin).
		if n >= 8 {
			c.RY(0.4, n-2).CX(n-2, n-1).RZ(0.9, n-1).CX(n-2, n-1)
		}
		pl, err := Compile(c)
		if err != nil {
			t.Fatalf("n=%d: compile: %v", n, err)
		}
		if pl.Stats().Fused2Q == 0 {
			t.Errorf("n=%d: no two-qubit fusion on a CX-sandwich circuit; stats %+v", n, pl.Stats())
		}
		want := evolveDirect(t, c)
		for _, shards := range shardCounts {
			st := mustState(t, n)
			if err := pl.Execute(st, shards); err != nil {
				t.Fatalf("n=%d shards=%d: %v", n, shards, err)
			}
			if d := maxAmpDelta(want, st); d > 1e-9 {
				t.Errorf("n=%d shards=%d: max amplitude delta %v", n, shards, d)
			}
		}
	}
}

// TestCompileParityCXHeavyRandom stresses the dense path with random
// CX/SWAP-heavy circuits (two-qubit gates dominate the mix, with 1Q gates
// and diagonals interleaved) across 2–12 qubits.
func TestCompileParityCXHeavyRandom(t *testing.T) {
	shardCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	oneQ := []gates.Name{gates.H, gates.SX, gates.RY, gates.RZ, gates.T}
	for n := 2; n <= 12; n += 2 {
		for trial := 0; trial < 3; trial++ {
			r := rand.New(rand.NewSource(int64(7000*n + trial)))
			c := circuit.New(n, 0)
			for i := 0; i < 60; i++ {
				switch roll := r.Intn(10); {
				case roll < 6 && n >= 2: // two-qubit gate, often same-pair chains
					a, b := r.Intn(n), r.Intn(n)
					for b == a {
						b = r.Intn(n)
					}
					switch r.Intn(4) {
					case 0:
						c.CX(a, b)
					case 1:
						c.Swap(a, b)
					case 2:
						c.CZGate(a, b)
					default:
						c.CPhase(r.Float64()*4-2, a, b)
					}
				case roll < 9:
					name := oneQ[r.Intn(len(oneQ))]
					info, _ := gates.Lookup(name)
					var params []float64
					if info.Params == 1 {
						params = []float64{r.Float64()*4 - 2}
					}
					c.Gate(name, []int{r.Intn(n)}, params...)
				default: // pair-local diagonal, folds into dense kernels
					q := r.Intn(n)
					phases := []complex128{1, cmplx.Exp(complex(0, r.Float64()*2))}
					if err := c.Diagonal([]int{q}, phases); err != nil {
						panic(err)
					}
				}
			}
			pl, err := Compile(c)
			if err != nil {
				t.Fatalf("n=%d trial=%d: compile: %v", n, trial, err)
			}
			want := evolveDirect(t, c)
			for _, shards := range shardCounts {
				st := mustState(t, n)
				if err := pl.Execute(st, shards); err != nil {
					t.Fatalf("n=%d trial=%d shards=%d: %v", n, trial, shards, err)
				}
				if d := maxAmpDelta(want, st); d > 1e-9 {
					t.Errorf("n=%d trial=%d shards=%d: max amplitude delta %v\n%s",
						n, trial, shards, d, c)
				}
			}
		}
	}
}

// monomialCircuit builds a circuit whose two-qubit chains are pure
// permutation×phase: CX/CZ/SWAP/CP(π-multiples are unnecessary — any CP
// is diagonal) chains on a few pairs, interleaved with phase-type and
// permutation-type single-qubit gates (X, Y, Z, S, Sdg, T, Tdg). Every
// dense 4×4 kernel such a circuit compiles to must finalize monomial.
func monomialCircuit(r *rand.Rand, n, depth int) *circuit.Circuit {
	c := circuit.New(n, 0)
	oneQ := []gates.Name{gates.X, gates.Y, gates.Z, gates.S, gates.Sdg, gates.T, gates.Tdg}
	for i := 0; i < depth; i++ {
		switch r.Intn(5) {
		case 0:
			c.Gate(oneQ[r.Intn(len(oneQ))], []int{r.Intn(n)})
		default:
			qs := r.Perm(n)[:2]
			switch r.Intn(4) {
			case 0:
				c.CX(qs[0], qs[1])
			case 1:
				c.CZGate(qs[0], qs[1])
			case 2:
				c.CPhase(r.Float64()*4*math.Pi-2*math.Pi, qs[0], qs[1])
			default:
				c.Swap(qs[0], qs[1])
			}
		}
	}
	return c
}

// TestCompileMonomialStats checks the fast-path detection: a CX·CZ·CX
// chain on one pair fuses into a dense 4×4 that finalizes as monomial,
// while folding in a Hadamard (a genuinely dense 1Q gate) keeps the
// kernel on the dense sweep.
func TestCompileMonomialStats(t *testing.T) {
	c := circuit.New(3, 0)
	c.CX(0, 1)
	c.CZGate(0, 1)
	c.CX(0, 1)
	pl, err := Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Stats().Fused2Q == 0 {
		t.Fatalf("chain did not fuse: %+v", pl.Stats())
	}
	if pl.Stats().Monomial2Q != 1 {
		t.Fatalf("CX·CZ·CX kernel not detected monomial: %+v", pl.Stats())
	}

	c2 := circuit.New(3, 0)
	c2.CX(0, 1)
	c2.H(0)
	c2.CX(0, 1)
	pl2, err := Compile(c2)
	if err != nil {
		t.Fatal(err)
	}
	if pl2.Stats().Monomial2Q != 0 {
		t.Fatalf("H-bearing kernel wrongly detected monomial: %+v", pl2.Stats())
	}
}

// TestCompileParityMonomial is the parity suite for the monomial sweep:
// permutation×phase circuits on 2–12 qubits must agree with the direct
// per-gate path at 1e-9 across shard counts, and the fast path must
// actually be exercised.
func TestCompileParityMonomial(t *testing.T) {
	shardCounts := []int{1, 4, runtime.GOMAXPROCS(0)}
	sawMono := false
	for n := 2; n <= 12; n += 2 {
		for trial := 0; trial < 4; trial++ {
			r := rand.New(rand.NewSource(int64(7000*n + trial)))
			c := monomialCircuit(r, n, 20+r.Intn(30))
			want := evolveDirect(t, c)
			pl, err := Compile(c)
			if err != nil {
				t.Fatalf("n=%d trial=%d: %v", n, trial, err)
			}
			if pl.Stats().Monomial2Q > 0 {
				sawMono = true
			}
			for _, shards := range shardCounts {
				st := mustState(t, n)
				if err := pl.Execute(st, shards); err != nil {
					t.Fatalf("n=%d trial=%d shards=%d: %v", n, trial, shards, err)
				}
				if d := maxAmpDelta(want, st); d > 1e-9 {
					t.Errorf("n=%d trial=%d shards=%d: max amplitude delta %v\n%s", n, trial, shards, d, c)
				}
			}
		}
	}
	if !sawMono {
		t.Fatal("no trial produced a monomial kernel; the fast path went untested")
	}
}

// TestCompileParityMonomialBlocked pins the cache-blocked monomial sweep:
// a chain on a high qubit pair (lower-qubit stride ≥ blockedStrideMin)
// must match the direct path.
func TestCompileParityMonomialBlocked(t *testing.T) {
	const n = 14
	c := circuit.New(n, 0)
	// Spread amplitude across the low qubits only: a Hadamard on 12 or 13
	// would fold into the pair kernel and (rightly) disqualify the
	// monomial form. X/T on the pair keep it permutation×phase.
	for q := 0; q < 12; q++ {
		c.H(q)
		c.T(q)
	}
	c.X(12)
	c.T(13)
	c.X(13)
	c.CX(12, 13)
	c.CZGate(12, 13)
	c.Swap(12, 13)
	c.S(12)
	c.CX(13, 12)
	want := evolveDirect(t, c)
	pl, err := Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	if pl.Stats().Monomial2Q == 0 {
		t.Fatalf("high-pair chain not monomial: %+v", pl.Stats())
	}
	for _, shards := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		st := mustState(t, n)
		if err := pl.Execute(st, shards); err != nil {
			t.Fatal(err)
		}
		if d := maxAmpDelta(want, st); d > 1e-9 {
			t.Errorf("shards=%d: max amplitude delta %v", shards, d)
		}
	}
}

// TestCompileRejectsMidCircuitMeasure mirrors Evolve's contract.
func TestCompileRejectsMidCircuitMeasure(t *testing.T) {
	c := circuit.New(2, 2)
	c.H(0).Measure(0, 0)
	c.X(1)
	if _, err := Compile(c); err == nil {
		t.Error("mid-circuit measurement compiled")
	}
}

// TestPlanReuseAcrossStates runs one compiled plan on several fresh
// states concurrently — Plans must be immutable after Compile.
func TestPlanReuseAcrossStates(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	c := randomCircuit(r, 8, 40)
	pl, err := Compile(c)
	if err != nil {
		t.Fatal(err)
	}
	want := evolveDirect(t, c)
	done := make(chan float64, 4)
	for g := 0; g < 4; g++ {
		go func(shards int) {
			st, _ := NewState(8)
			if err := pl.Execute(st, shards); err != nil {
				done <- math.Inf(1)
				return
			}
			done <- maxAmpDelta(want, st)
		}(1 + g%3)
	}
	for g := 0; g < 4; g++ {
		if d := <-done; d > 1e-9 {
			t.Errorf("concurrent plan reuse drifted: %v", d)
		}
	}
}

// TestRunCountsIdenticalAcrossShards locks in the scheduling/result
// separation the jobs cache relies on: the shard grant must never change
// sampled counts, bit for bit. The CDF builds in fixed-size blocks, so
// its float association is independent of the shard count; the state is
// large enough to span several blocks and shards.
func TestRunCountsIdenticalAcrossShards(t *testing.T) {
	n := 13 // 8192 amplitudes = two CDF blocks, above the parallel threshold
	c := circuit.New(n, n)
	for q := 0; q < n; q++ {
		c.H(q)
		c.RZ(0.1*float64(q+1), q)
	}
	for q := 0; q < n-1; q++ {
		c.CX(q, q+1)
	}
	for q := 0; q < n; q++ {
		c.RY(0.07*float64(q+1), q)
	}
	c.MeasureAll()
	var want Counts
	for _, shards := range []int{1, 2, 3, runtime.GOMAXPROCS(0)} {
		res, err := Run(c, Options{Shots: 3000, Seed: 11, Shards: shards})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if want == nil {
			want = res.Counts
			continue
		}
		if len(res.Counts) != len(want) {
			t.Fatalf("shards=%d: %d outcomes, want %d", shards, len(res.Counts), len(want))
		}
		for k, v := range want {
			if res.Counts[k] != v {
				t.Fatalf("shards=%d: count[%d] = %d, want %d", shards, k, res.Counts[k], v)
			}
		}
	}
}

// TestRunNoisyCountsIdenticalAcrossShards does the same for the
// trajectory engine: the grant splits shots across workers, but each shot
// owns a serially pre-derived RNG stream, so counts cannot depend on the
// split.
func TestRunNoisyCountsIdenticalAcrossShards(t *testing.T) {
	c := circuit.New(4, 4)
	c.H(0).CX(0, 1).CX(1, 2).CX(2, 3).MeasureAll()
	noise := NoiseModel{Prob1Q: 0.01, Prob2Q: 0.05, ReadoutFlip: 0.02}
	var want Counts
	for _, shards := range []int{1, 2, 5, runtime.GOMAXPROCS(0)} {
		res, err := RunNoisy(c, noise, Options{Shots: 800, Seed: 21, Shards: shards})
		if err != nil {
			t.Fatalf("shards=%d: %v", shards, err)
		}
		if want == nil {
			want = res.Counts
			continue
		}
		if len(res.Counts) != len(want) {
			t.Fatalf("shards=%d: %d outcomes, want %d", shards, len(res.Counts), len(want))
		}
		for k, v := range want {
			if res.Counts[k] != v {
				t.Fatalf("shards=%d: count[%d] = %d, want %d", shards, k, res.Counts[k], v)
			}
		}
	}
}

// TestScratchReuseAcrossCalls checks that repeated permute/init sweeps on
// one state do not allocate a fresh 2^n staging copy per call.
func TestScratchReuseAcrossCalls(t *testing.T) {
	st := mustState(t, 10)
	perm := make([]uint64, 4)
	for i, p := range []uint64{2, 3, 1, 0} {
		perm[i] = p
	}
	if err := st.ApplyPermute([]int{1, 4}, perm); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(50, func() {
		if err := st.ApplyPermute([]int{1, 4}, perm); err != nil {
			t.Fatal(err)
		}
	})
	// Two small fixed allocations remain (the qubit-mask slices); the
	// 2^n scratch copy must not.
	if allocs > 4 {
		t.Errorf("ApplyPermute allocates %.1f objects per call; scratch not reused", allocs)
	}
}
