// Package algolib implements the quantum algorithmic libraries of the
// middle layer (paper §4.4): reusable constructors that consume typed
// quantum data and produce operator descriptor sequences, cost-hint
// estimators, result-schema helpers, and the realization hooks that lower
// descriptors to target-specific forms (gate circuits here; the anneal
// path lowers to Ising models in the backend).
//
// Constructors are pure: they build and validate JSON-ready descriptors
// and never touch a backend. Realization happens only when a caller
// supplies registers and asks for a circuit (Lower), keeping the paper's
// late-binding rule: "deferring circuit generation until the back-end
// parameters are known".
package algolib

import (
	"fmt"

	"repro/internal/qdt"
	"repro/internal/qop"
)

// Registers is the register table consulted during lowering.
type Registers map[string]*qdt.DataType

// widths derives the width table for sequence validation.
func (r Registers) widths() qop.QDTWidths {
	w := qop.QDTWidths{}
	for id, d := range r {
		w[id] = d.Width
	}
	return w
}

// provenance stamps descriptors built by this library.
const provenance = "repro/internal/algolib"

func newOp(name string, kind qop.RepKind, registerID string) *qop.Operator {
	op := qop.New(name, kind, registerID)
	op.Provenance = provenance
	return op
}

// attachDefaultResult gives an operator the identity readout for its
// register — the helper the paper's §4.4 lists ("result-schema helpers
// for measurements").
func attachDefaultResult(op *qop.Operator, reg *qdt.DataType) {
	op.Result = qop.DefaultResultSchema(reg.ID, reg.Width,
		string(reg.MeasurementSemantics), string(reg.BitOrder))
}

// NewMeasurement builds the explicit final MEASUREMENT operator with the
// register's default result schema.
func NewMeasurement(reg *qdt.DataType) *qop.Operator {
	op := newOp("measure_"+reg.ID, qop.Measurement, reg.ID)
	attachDefaultResult(op, reg)
	return op
}

// Validate checks a sequence against a register table with the library's
// default policy (no hidden mid-circuit measurement).
func Validate(ops qop.Sequence, regs Registers) error {
	for id, d := range regs {
		if err := d.Validate(); err != nil {
			return err
		}
		if id != d.ID {
			return fmt.Errorf("algolib: register table key %q != descriptor id %q", id, d.ID)
		}
	}
	return ops.Validate(regs.widths(), qop.ValidateOptions{})
}
