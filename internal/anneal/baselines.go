package anneal

import (
	"fmt"

	"repro/internal/ising"
	"repro/internal/rng"
)

// RandomSample draws num_reads uniformly random configurations — the
// floor any optimizer must beat.
func RandomSample(m *ising.Model, numReads int, seed uint64) (*Result, error) {
	if numReads < 1 {
		return nil, fmt.Errorf("anneal: num_reads %d < 1", numReads)
	}
	if m.N > 63 {
		return nil, fmt.Errorf("anneal: model size %d exceeds 63-spin mask limit", m.N)
	}
	r := rng.New(seed)
	agg := map[uint64]int{}
	for i := 0; i < numReads; i++ {
		agg[r.Uint64n(uint64(1)<<uint(m.N))]++
	}
	res := &Result{NumReads: numReads}
	for mask, occ := range agg {
		res.Samples = append(res.Samples, Sample{Mask: mask, Energy: m.EnergyBits(mask), Occurrences: occ})
	}
	sortSamples(res.Samples)
	return res, nil
}

// GreedyDescent runs num_reads steepest-descent walks from random starts:
// repeatedly flip the spin with the largest energy decrease until no flip
// helps. Finds local minima only — the classic baseline SA improves on
// for frustrated landscapes.
func GreedyDescent(m *ising.Model, numReads int, seed uint64) (*Result, error) {
	if numReads < 1 {
		return nil, fmt.Errorf("anneal: num_reads %d < 1", numReads)
	}
	adj := m.AdjacencyList()
	master := rng.New(seed)
	agg := map[uint64]int{}
	for read := 0; read < numReads; read++ {
		r := master.Child()
		s := randomSpins(m.N, r)
		fields := initFields(m, adj, s)
		for {
			bestI, bestDelta := -1, -1e-12
			for i := 0; i < m.N; i++ {
				delta := -2 * float64(s[i]) * fields[i]
				if delta < bestDelta {
					bestDelta = delta
					bestI = i
				}
			}
			if bestI < 0 {
				break
			}
			flip(m, adj, s, fields, bestI)
		}
		agg[ising.BitsFromSpins(s)]++
	}
	return aggregate(m, agg, numReads), nil
}

// TabuSearch runs num_reads tabu walks: always take the best non-tabu
// flip (even uphill), remembering recently flipped spins for `tenure`
// moves, and returns the best configuration each walk visited.
func TabuSearch(m *ising.Model, numReads, steps int, seed uint64) (*Result, error) {
	if numReads < 1 {
		return nil, fmt.Errorf("anneal: num_reads %d < 1", numReads)
	}
	if steps <= 0 {
		steps = 50 * m.N
	}
	tenure := m.N / 4
	if tenure < 1 {
		tenure = 1
	}
	adj := m.AdjacencyList()
	master := rng.New(seed)
	agg := map[uint64]int{}
	for read := 0; read < numReads; read++ {
		r := master.Child()
		s := randomSpins(m.N, r)
		fields := initFields(m, adj, s)
		energy := m.Energy(s)
		bestEnergy := energy
		bestMask := ising.BitsFromSpins(s)
		tabuUntil := make([]int, m.N)
		for step := 0; step < steps; step++ {
			bestI := -1
			bestDelta := 0.0
			for i := 0; i < m.N; i++ {
				delta := -2 * float64(s[i]) * fields[i]
				// Aspiration: a tabu move is allowed if it beats the best.
				if step < tabuUntil[i] && energy+delta >= bestEnergy {
					continue
				}
				if bestI < 0 || delta < bestDelta {
					bestI = i
					bestDelta = delta
				}
			}
			if bestI < 0 {
				break
			}
			flip(m, adj, s, fields, bestI)
			energy += bestDelta
			tabuUntil[bestI] = step + tenure
			if energy < bestEnergy {
				bestEnergy = energy
				bestMask = ising.BitsFromSpins(s)
			}
		}
		agg[bestMask]++
	}
	return aggregate(m, agg, numReads), nil
}

func randomSpins(n int, r *rng.Rand) []int8 {
	s := make([]int8, n)
	for i := range s {
		if r.Float64() < 0.5 {
			s[i] = 1
		} else {
			s[i] = -1
		}
	}
	return s
}

func initFields(m *ising.Model, adj [][]int, s []int8) []float64 {
	fields := make([]float64, m.N)
	for i := 0; i < m.N; i++ {
		fields[i] = m.H[i]
		for _, j := range adj[i] {
			fields[i] += m.GetJ(i, j) * float64(s[j])
		}
	}
	return fields
}

func flip(m *ising.Model, adj [][]int, s []int8, fields []float64, i int) {
	old := s[i]
	s[i] = -old
	for _, j := range adj[i] {
		fields[j] += -2 * m.GetJ(i, j) * float64(old)
	}
}

func aggregate(m *ising.Model, agg map[uint64]int, numReads int) *Result {
	res := &Result{NumReads: numReads}
	for mask, occ := range agg {
		res.Samples = append(res.Samples, Sample{Mask: mask, Energy: m.EnergyBits(mask), Occurrences: occ})
	}
	sortSamples(res.Samples)
	return res
}
