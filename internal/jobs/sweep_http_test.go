package jobs

import (
	"fmt"
	"net/http"
	"testing"

	"repro/internal/algolib"
	"repro/internal/bundle"
	"repro/internal/ctxdesc"
	"repro/internal/graph"
	"repro/internal/qdt"
	"repro/internal/qop"
)

// sweepBundleJSON renders a symbolic QAOA sweep template over nq qubits
// as a job.json document.
func sweepBundleJSON(t testing.TB, nq int, points [][]float64) []byte {
	t.Helper()
	reg := qdt.NewIsingVars("ising_vars", "s", nq)
	seq, err := algolib.BuildQAOASymbolic(reg, graph.Cycle(nq), []string{"gamma0"}, []string{"beta0"})
	if err != nil {
		t.Fatal(err)
	}
	ctx := ctxdesc.NewGate("gate.statevector", 256, 7)
	ctx.Sweep = &ctxdesc.Sweep{Params: []string{"gamma0", "beta0"}, Points: points}
	b, err := bundle.New([]*qdt.DataType{reg}, seq, ctx)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := b.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	return raw
}

// TestHTTPSweepEndToEnd drives the sweep surface over HTTP: POST
// /v1/sweeps accepts the grid as one job, GET /v1/jobs/{id}?wait=
// long-polls it to done, and GET /v1/sweeps/{id} answers the indexed
// per-point result set.
func TestHTTPSweepEndToEnd(t *testing.T) {
	pool := NewPool(Options{Workers: 2, QueueDepth: 8})
	defer pool.Close()
	h := NewHandler(pool)
	points := [][]float64{{0.3, 0.7}, {1.1, 0.2}, {0.8, 1.4}}
	raw := sweepBundleJSON(t, 4, points)

	sub := doJSON(t, h, "POST", "/v1/sweeps", raw, http.StatusAccepted)
	id, _ := sub["id"].(string)
	if id == "" || sub["points"] != float64(len(points)) {
		t.Fatalf("submit: %v", sub)
	}

	// Long-poll the generic job status straight to terminal.
	st := doJSON(t, h, "GET", "/v1/jobs/"+id+"?wait=30s", nil, http.StatusOK)
	if st["state"] != string(StateDone) || st["sweep"] != true || st["points_done"] != float64(len(points)) {
		t.Fatalf("status: %v", st)
	}

	res := doJSON(t, h, "GET", "/v1/sweeps/"+id, nil, http.StatusOK)
	list, ok := res["results"].([]any)
	if !ok || len(list) != len(points) {
		t.Fatalf("results: %v", res["results"])
	}
	for i, el := range list {
		pt, _ := el.(map[string]any)
		if pt["index"] != float64(i) {
			t.Fatalf("point %d has index %v", i, pt["index"])
		}
		if entries, ok := pt["entries"].([]any); !ok || len(entries) == 0 {
			t.Fatalf("point %d has no entries", i)
		}
	}

	// The per-point route rejects non-sweep jobs, and the jobs route's
	// single-result endpoint rejects sweeps.
	plain := doJSON(t, h, "POST", "/v1/jobs", quickstartBundle(t), http.StatusAccepted)
	pid, _ := plain["id"].(string)
	doJSON(t, h, "GET", "/v1/jobs/"+pid+"?wait=30s", nil, http.StatusOK)
	doJSON(t, h, "GET", "/v1/sweeps/"+pid, nil, http.StatusBadRequest)
	doJSON(t, h, "GET", "/v1/jobs/"+id+"/result", nil, http.StatusInternalServerError)

	// Validation surface: bad wait duration, missing sweep block, unknown id.
	doJSON(t, h, "GET", "/v1/jobs/"+id+"?wait=banana", nil, http.StatusBadRequest)
	doJSON(t, h, "POST", "/v1/sweeps", quickstartBundle(t), http.StatusBadRequest)
	doJSON(t, h, "GET", "/v1/sweeps/job-junk", nil, http.StatusNotFound)
}

// BenchmarkSweepRoundTrip compares the two ways a client runs a
// parameter grid against the HTTP surface, caching disabled so every
// point executes: one POST /v1/sweeps (compile once, bind per point)
// versus the per-job loop (POST /v1/jobs + wait + result per point, each
// submission lowering/transpiling/compiling from scratch). The workload
// is a three-layer 12-qubit QAOA at modest shots — the variational
// regime the sweep API exists for, where per-job fixed costs (parse,
// validate, lower, transpile, compile, fingerprint) rival the per-point
// simulation.
func BenchmarkSweepRoundTrip(b *testing.B) {
	const nq, layers, shots = 6, 8, 32
	reg := qdt.NewIsingVars("ising_vars", "s", nq)
	var gammas, betas []string
	for l := 0; l < layers; l++ {
		gammas = append(gammas, fmt.Sprintf("gamma%d", l))
		betas = append(betas, fmt.Sprintf("beta%d", l))
	}
	seq, err := algolib.BuildQAOASymbolic(reg, graph.Cycle(nq), gammas, betas)
	if err != nil {
		b.Fatal(err)
	}
	ctx := ctxdesc.NewGate("gate.statevector", shots, 7)
	var points [][]float64
	for i := 0; i < 16; i++ {
		pt := make([]float64, 2*layers)
		for k := range pt {
			pt[k] = 0.1 + 0.07*float64(i) + 0.05*float64(k)
		}
		points = append(points, pt)
	}
	ctx.Sweep = &ctxdesc.Sweep{Params: append(append([]string{}, gammas...), betas...), Points: points}
	tb, err := bundle.New([]*qdt.DataType{reg}, seq, ctx)
	if err != nil {
		b.Fatal(err)
	}
	raw, err := tb.Marshal()
	if err != nil {
		b.Fatal(err)
	}
	tmpl, err := bundle.FromJSON(raw, qop.ValidateOptions{})
	if err != nil {
		b.Fatal(err)
	}

	b.Run("sweep", func(b *testing.B) {
		pool := NewPool(Options{Workers: 1, CacheSize: -1})
		defer pool.Close()
		h := NewHandler(pool)
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			sub := doJSON(b, h, "POST", "/v1/sweeps", raw, http.StatusAccepted)
			id, _ := sub["id"].(string)
			res := doJSON(b, h, "GET", "/v1/sweeps/"+id+"?wait=60s", nil, http.StatusOK)
			if list, ok := res["results"].([]any); !ok || len(list) != len(points) {
				b.Fatalf("iteration %d: %v", i, res)
			}
		}
	})
	b.Run("perjob", func(b *testing.B) {
		pool := NewPool(Options{Workers: 1, CacheSize: -1})
		defer pool.Close()
		h := NewHandler(pool)
		// Materialize each point the way a sweep-less client would.
		raws := make([][]byte, len(points))
		for i, pt := range points {
			cb, err := tmpl.BindPoint(pt)
			if err != nil {
				b.Fatal(err)
			}
			if raws[i], err = cb.Marshal(); err != nil {
				b.Fatal(err)
			}
		}
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			ids := make([]string, len(points))
			for k, body := range raws {
				sub := doJSON(b, h, "POST", "/v1/jobs", body, http.StatusAccepted)
				ids[k], _ = sub["id"].(string)
			}
			for k, id := range ids {
				st := doJSON(b, h, "GET", "/v1/jobs/"+id+"?wait=60s", nil, http.StatusOK)
				if st["state"] != string(StateDone) {
					b.Fatalf("iteration %d point %d: %v", i, k, st)
				}
				res := doJSON(b, h, "GET", "/v1/jobs/"+id+"/result", nil, http.StatusOK)
				if entries, ok := res["entries"].([]any); !ok || len(entries) == 0 {
					b.Fatalf("iteration %d point %d: no entries", i, k)
				}
			}
		}
	})
}
