package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"repro/internal/bundle"
	"repro/internal/jobs"
	"repro/internal/jobs/store"
)

// TestEventOrderUnderConcurrentSubmitCancel stress-tests the per-job
// event-queue claim the PR 5 redesign rests on: transitions enqueue
// their journal events under d.mu in transition order and a single
// claimant flushes them off-lock, so the journal's per-job order always
// equals the in-memory transition order — even with submits, cancels,
// forwarder goroutines and poll watchers racing. Run under -race this
// also sweeps the enqueue/flush handoff for data races. The journal is
// re-read after Close and every job's event sequence is checked against
// the lifecycle grammar and the dispatcher's final verdict.
func TestEventOrderUnderConcurrentSubmitCancel(t *testing.T) {
	fake := registerFake(t, "fake.fleet_evorder")
	fake.block = make(chan struct{}) // hold every execution so cancels race real queues
	w1, w2 := startWorker(t, 1), startWorker(t, 1)
	dir := t.TempDir()
	st, err := store.Open(dir, store.Options{Sync: store.SyncGroup})
	if err != nil {
		t.Fatal(err)
	}
	opts := fastOpts(w1, w2)
	opts.Store = st
	d, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	var closeOnce sync.Once
	shutdown := func() {
		closeOnce.Do(func() {
			d.Close()
			st.Close()
		})
	}
	defer shutdown()

	// Distinct seeds ⇒ distinct cache keys: no dedup, every submission is
	// its own job with its own journal lifecycle.
	const n = 24
	bundles := make([]*bundle.Bundle, n)
	for i := range bundles {
		bundles[i] = fleetBundle(t, "fake.fleet_evorder", uint64(i+1))
	}
	ids := make([]string, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	for i := range bundles {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sub, err := d.Submit(bundles[i], 0)
			if err != nil {
				errs[i] = err
				return
			}
			ids[i] = sub.ID
			if i%2 == 1 {
				// Chase every odd submission with an immediate cancel,
				// racing the forwarder goroutine. Losing the race (the job
				// already running remotely, or terminal) is a legal
				// outcome; only the journal grammar below must hold.
				if _, err := d.Cancel(context.Background(), sub.ID); err != nil &&
					!errors.Is(err, ErrConflict) && !errors.Is(err, jobs.ErrNotFound) {
					errs[i] = err
				}
			}
		}(i)
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			t.Fatalf("job %d: %v", i, err)
		}
	}
	close(fake.block) // release the held executions; survivors finish

	final := make(map[string]jobs.State, n)
	for _, id := range ids {
		fin, err := d.Wait(id)
		if err != nil {
			t.Fatalf("wait %s: %v", id, err)
		}
		if fin.State != jobs.StateDone && fin.State != jobs.StateCanceled {
			t.Fatalf("job %s finished %s (%s), want done or canceled", id, fin.State, fin.Error)
		}
		final[id] = fin.State
	}
	shutdown() // flush and fsync everything before reading the journal

	raw, err := os.ReadFile(filepath.Join(dir, "journal.jsonl"))
	if err != nil {
		t.Fatal(err)
	}
	byJob := map[string][]store.Event{}
	for _, line := range splitLines(raw) {
		var ev store.Event
		if err := json.Unmarshal(line, &ev); err != nil {
			t.Fatalf("journal line %q: %v", line, err)
		}
		byJob[ev.Job] = append(byJob[ev.Job], ev)
	}

	terminalOf := map[string]jobs.State{
		store.EvDone:     jobs.StateDone,
		store.EvFailed:   jobs.StateFailed,
		store.EvCanceled: jobs.StateCanceled,
	}
	for _, id := range ids {
		evs := byJob[id]
		if len(evs) == 0 {
			t.Fatalf("job %s has no journal events", id)
		}
		if evs[0].T != store.EvSubmitted {
			t.Errorf("job %s: first event is %s, want submitted", id, evs[0].T)
		}
		submitted, terminal := 0, -1
		sawAssigned := false
		for i, ev := range evs {
			switch ev.T {
			case store.EvSubmitted:
				submitted++
			case store.EvAssigned:
				sawAssigned = true
			case store.EvStarted:
				if !sawAssigned {
					t.Errorf("job %s: started before any assignment", id)
				}
			}
			if _, isTerminal := terminalOf[ev.T]; isTerminal {
				if terminal >= 0 {
					t.Errorf("job %s: second terminal event %s after %s — a canceled job must stay canceled", id, ev.T, evs[terminal].T)
				}
				terminal = i
			} else if terminal >= 0 && ev.T != store.EvForget {
				t.Errorf("job %s: event %s journaled after terminal %s — journal order diverged from transition order", id, ev.T, evs[terminal].T)
			}
		}
		if submitted != 1 {
			t.Errorf("job %s: %d submitted events, want 1", id, submitted)
		}
		if terminal < 0 {
			t.Fatalf("job %s: no terminal event in journal", id)
		}
		if got := terminalOf[evs[terminal].T]; got != final[id] {
			t.Errorf("job %s: journal says %s, dispatcher reported %s", id, got, final[id])
		}
	}
}

// splitLines splits journal bytes into non-empty lines.
func splitLines(raw []byte) [][]byte {
	var lines [][]byte
	start := 0
	for i, b := range raw {
		if b == '\n' {
			if i > start {
				lines = append(lines, raw[start:i])
			}
			start = i + 1
		}
	}
	if start < len(raw) {
		lines = append(lines, raw[start:])
	}
	return lines
}
