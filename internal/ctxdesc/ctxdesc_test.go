package ctxdesc

import (
	"encoding/json"
	"strings"
	"testing"
)

// listing4 is the paper's Listing 4 verbatim.
const listing4 = `{
	"$schema": "ctx.schema.json",
	"exec": {
		"engine": "gate.aer_simulator",
		"samples": 4096,
		"seed": 42,
		"target": {
			"basis_gates": ["sx", "rz", "cx"],
			"coupling_map": [[0,1],[1,2],[2,3],[3,4],[4,5],[5,6],[6,7],[7,8],[8,9]]
		},
		"options": {"optimization_level": 2}
	}
}`

// listing5 is the paper's Listing 5 QEC block (with the elided exec filled
// in and extensions made concrete).
const listing5 = `{
	"$schema": "ctx.schema.json",
	"exec": {"engine": "gate.statevector", "samples": 1024, "seed": 7},
	"qec": {
		"code_family": "surface",
		"distance": 7,
		"allocator": "auto",
		"logical_gate_set": ["H", "S", "CNOT", "T", "MEASURE_Z"]
	},
	"extensions": {"vendor": {"note": "opaque"}}
}`

func TestListing4Parses(t *testing.T) {
	c, err := FromJSON([]byte(listing4))
	if err != nil {
		t.Fatalf("Listing 4 rejected: %v", err)
	}
	if c.Exec.Engine != "gate.aer_simulator" || c.Exec.Samples != 4096 || c.Exec.Seed != 42 {
		t.Errorf("exec parsed incorrectly: %+v", c.Exec)
	}
	if len(c.Exec.Target.BasisGates) != 3 || c.Exec.Target.BasisGates[0] != "sx" {
		t.Errorf("basis gates parsed incorrectly: %v", c.Exec.Target.BasisGates)
	}
	if len(c.Exec.Target.CouplingMap) != 9 || c.Exec.Target.CouplingMap[8] != [2]int{8, 9} {
		t.Errorf("coupling map parsed incorrectly: %v", c.Exec.Target.CouplingMap)
	}
	if c.OptimizationLevel() != 2 {
		t.Errorf("optimization level = %d, want 2", c.OptimizationLevel())
	}
	if c.EngineFamily() != "gate" {
		t.Errorf("engine family = %q, want gate", c.EngineFamily())
	}
}

func TestListing5Parses(t *testing.T) {
	c, err := FromJSON([]byte(listing5))
	if err != nil {
		t.Fatalf("Listing 5 rejected: %v", err)
	}
	if c.QEC.CodeFamily != "surface" || c.QEC.Distance != 7 || c.QEC.Allocator != "auto" {
		t.Errorf("qec parsed incorrectly: %+v", c.QEC)
	}
	if len(c.QEC.LogicalGateSet) != 5 {
		t.Errorf("logical gate set = %v", c.QEC.LogicalGateSet)
	}
	if _, ok := c.Extensions["vendor"]; !ok {
		t.Error("extensions not preserved")
	}
}

func TestValidateRejects(t *testing.T) {
	cases := []struct {
		name string
		doc  string
		want string
	}{
		{"empty engine", `{"$schema":"ctx.schema.json","exec":{"engine":""}}`, "engine is empty"},
		{"negative samples", `{"$schema":"ctx.schema.json","exec":{"engine":"g","samples":-1}}`, "negative"},
		{"self loop", `{"$schema":"ctx.schema.json","exec":{"engine":"g","target":{"coupling_map":[[1,1]]}}}`, "self-loop"},
		{"coupling beyond width", `{"$schema":"ctx.schema.json","exec":{"engine":"g","target":{"num_qubits":2,"coupling_map":[[0,2]]}}}`, "exceeds num_qubits"},
		{"bad code family", `{"$schema":"ctx.schema.json","qec":{"code_family":"parity","distance":3}}`, "code_family"},
		{"even distance", `{"$schema":"ctx.schema.json","qec":{"code_family":"surface","distance":4}}`, "odd"},
		{"zero distance", `{"$schema":"ctx.schema.json","qec":{"code_family":"surface","distance":0}}`, "distance"},
		{"bad error rate", `{"$schema":"ctx.schema.json","qec":{"code_family":"surface","distance":3,"phys_error_rate":1.5}}`, "phys_error_rate"},
		{"bad decoder", `{"$schema":"ctx.schema.json","qec":{"code_family":"surface","distance":3,"decoder":"magic"}}`, "decoder"},
		{"zero reads", `{"$schema":"ctx.schema.json","anneal":{"num_reads":0}}`, "num_reads"},
		{"beta order", `{"$schema":"ctx.schema.json","anneal":{"num_reads":1,"beta_min":5,"beta_max":1}}`, "beta"},
		{"bad schedule", `{"$schema":"ctx.schema.json","anneal":{"num_reads":1,"schedule":"exponential"}}`, "schedule"},
		{"zero qpus", `{"$schema":"ctx.schema.json","comm":{"qpus":0,"qubits_per_qpu":4}}`, "qpus"},
		{"bad partition", `{"$schema":"ctx.schema.json","comm":{"qpus":2,"qubits_per_qpu":4,"partition":[0,2]}}`, "partition"},
		{"negative pulse", `{"$schema":"ctx.schema.json","pulse":{"dt_ns":-1}}`, "pulse"},
		{"wrong schema", `{"$schema":"wrong.json"}`, "$schema"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			_, err := FromJSON([]byte(c.doc))
			if err == nil {
				t.Fatal("invalid context accepted")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestConstructors(t *testing.T) {
	g := NewGate("gate.statevector", 4096, 42)
	if err := g.Validate(); err != nil {
		t.Errorf("NewGate invalid: %v", err)
	}
	a := NewAnneal("anneal.sa", 1000, 7)
	if err := a.Validate(); err != nil {
		t.Errorf("NewAnneal invalid: %v", err)
	}
	if a.Anneal.NumReads != 1000 {
		t.Errorf("num_reads = %d", a.Anneal.NumReads)
	}
}

func TestOptimizationLevelDefaults(t *testing.T) {
	if lvl := New().OptimizationLevel(); lvl != 1 {
		t.Errorf("default optimization level = %d, want 1", lvl)
	}
	c := NewGate("g", 1, 0)
	c.Exec.Options = map[string]any{"optimization_level": 0}
	if lvl := c.OptimizationLevel(); lvl != 0 {
		t.Errorf("explicit level 0 read as %d", lvl)
	}
	c.Exec.Options["optimization_level"] = 3
	if lvl := c.OptimizationLevel(); lvl != 3 {
		t.Errorf("int level read as %d", lvl)
	}
}

func TestEngineFamilyNoDotAndNil(t *testing.T) {
	c := NewGate("standalone", 1, 0)
	if f := c.EngineFamily(); f != "standalone" {
		t.Errorf("family = %q", f)
	}
	if f := New().EngineFamily(); f != "" {
		t.Errorf("nil-exec family = %q", f)
	}
}

func TestCloneIsDeep(t *testing.T) {
	c, _ := FromJSON([]byte(listing4))
	cp := c.Clone()
	cp.Exec.Target.CouplingMap[0] = [2]int{7, 8}
	cp.Exec.Options["optimization_level"] = 0
	if c.Exec.Target.CouplingMap[0] != [2]int{0, 1} {
		t.Error("Clone shares coupling map")
	}
	if c.OptimizationLevel() != 2 {
		t.Error("Clone shares options map")
	}
}

func TestMerge(t *testing.T) {
	base, _ := FromJSON([]byte(listing4))
	override := New()
	override.QEC = &QEC{CodeFamily: "surface", Distance: 3}
	override.Extensions = map[string]any{"trace": true}
	merged := base.Merge(override)
	if merged.Exec == nil || merged.Exec.Engine != "gate.aer_simulator" {
		t.Error("Merge dropped base exec")
	}
	if merged.QEC == nil || merged.QEC.Distance != 3 {
		t.Error("Merge dropped override qec")
	}
	if merged.Extensions["trace"] != true {
		t.Error("Merge dropped extensions")
	}
	// Base untouched.
	if base.QEC != nil {
		t.Error("Merge mutated base")
	}
	// Merge with nil is a clone.
	alone := base.Merge(nil)
	if alone.Exec.Samples != 4096 {
		t.Error("Merge(nil) lost data")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	c, _ := FromJSON([]byte(listing4))
	b, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromJSON(b)
	if err != nil {
		t.Fatalf("re-marshaled context rejected: %v", err)
	}
	if back.Exec.Samples != 4096 || back.Exec.Seed != 42 || len(back.Exec.Target.CouplingMap) != 9 {
		t.Errorf("round trip changed context: %+v", back.Exec)
	}
}

func TestMarshalDefaultsSchema(t *testing.T) {
	b, err := json.Marshal(&Context{})
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(b), SchemaName) {
		t.Errorf("marshal missing schema: %s", b)
	}
}
