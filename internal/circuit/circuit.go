// Package circuit provides the backend-side circuit intermediate
// representation that operator descriptors are lowered to on the gate path.
//
// A Circuit is a flat instruction list over numbered qubits and classical
// bits. Besides standard gates it supports two *native* operations the
// statevector simulator executes directly: arbitrary reversible
// permutations (used to realize modular-arithmetic templates exactly) and
// state initialization (used for amplitude encoding). Both are rejected by
// basis-gate-constrained transpilation, mirroring real stacks where such
// ops require synthesis before hitting hardware.
package circuit

import (
	"fmt"
	"strings"

	"repro/internal/gates"
)

// Opcode distinguishes instruction classes beyond plain gates.
type Opcode int

const (
	OpGate     Opcode = iota // standard gate from the gates package
	OpMeasure                // single-qubit Z measurement into a classical bit
	OpBarrier                // scheduling barrier across listed qubits (all if empty)
	OpPermute                // native basis-state permutation over listed qubits
	OpInit                   // native state initialization over listed qubits
	OpDiagonal               // native diagonal unitary (unit-modulus phases) over listed qubits
)

// Instruction is one operation.
type Instruction struct {
	Op     Opcode
	Gate   gates.Name // for OpGate
	Qubits []int
	Params []float64 // gate angles
	Clbits []int     // for OpMeasure (parallel to Qubits)

	// Refs, when non-nil, parallels Params and marks symbolic entries:
	// Refs[i].Index >= 0 means the effective angle is
	// Refs[i].Scale * values[Refs[i].Index] under a bind vector, and the
	// Params[i] value is a placeholder. Entries with Index < 0 are
	// concrete. Concrete circuits leave Refs nil.
	Refs []ParamRef

	// Perm, for OpPermute, maps input basis index -> output basis index
	// over the listed qubits (local indexing: Qubits[0] is bit 0).
	Perm []uint64

	// Amps, for OpInit, is the normalized state over the listed qubits.
	Amps []complex128

	// Phases, for OpDiagonal, are the unit-modulus diagonal entries over
	// the listed qubits (local indexing as for Perm).
	Phases []complex128
}

// Circuit is an ordered instruction list.
type Circuit struct {
	NumQubits int
	NumClbits int
	Instrs    []Instruction
}

// New returns an empty circuit. It panics on negative sizes.
func New(numQubits, numClbits int) *Circuit {
	if numQubits < 0 || numClbits < 0 {
		panic("circuit: negative register size")
	}
	return &Circuit{NumQubits: numQubits, NumClbits: numClbits}
}

// Append validates and adds an instruction.
func (c *Circuit) Append(ins Instruction) error {
	switch ins.Op {
	case OpGate:
		info, err := gates.Lookup(ins.Gate)
		if err != nil {
			return err
		}
		if len(ins.Qubits) != info.Qubits {
			return fmt.Errorf("circuit: gate %q takes %d qubits, got %d", ins.Gate, info.Qubits, len(ins.Qubits))
		}
		if len(ins.Params) != info.Params {
			return fmt.Errorf("circuit: gate %q takes %d params, got %d", ins.Gate, info.Params, len(ins.Params))
		}
		if ins.Refs != nil && len(ins.Refs) != len(ins.Params) {
			return fmt.Errorf("circuit: gate %q has %d params but %d refs", ins.Gate, len(ins.Params), len(ins.Refs))
		}
	case OpMeasure:
		if len(ins.Qubits) != len(ins.Clbits) {
			return fmt.Errorf("circuit: measure has %d qubits but %d clbits", len(ins.Qubits), len(ins.Clbits))
		}
		for _, cb := range ins.Clbits {
			if cb < 0 || cb >= c.NumClbits {
				return fmt.Errorf("circuit: clbit %d out of [0,%d)", cb, c.NumClbits)
			}
		}
	case OpBarrier:
		// any qubit list
	case OpPermute:
		n := len(ins.Qubits)
		if n == 0 || n > 24 {
			return fmt.Errorf("circuit: permute over %d qubits unsupported", n)
		}
		want := 1 << uint(n)
		if len(ins.Perm) != want {
			return fmt.Errorf("circuit: permute over %d qubits needs %d entries, got %d", n, want, len(ins.Perm))
		}
		seen := make([]bool, want)
		for _, to := range ins.Perm {
			if to >= uint64(want) || seen[to] {
				return fmt.Errorf("circuit: permute table is not a bijection")
			}
			seen[to] = true
		}
	case OpInit:
		n := len(ins.Qubits)
		if n == 0 || n > 24 {
			return fmt.Errorf("circuit: init over %d qubits unsupported", n)
		}
		if len(ins.Amps) != 1<<uint(n) {
			return fmt.Errorf("circuit: init over %d qubits needs %d amplitudes, got %d", n, 1<<uint(n), len(ins.Amps))
		}
	case OpDiagonal:
		n := len(ins.Qubits)
		if n == 0 || n > 24 {
			return fmt.Errorf("circuit: diagonal over %d qubits unsupported", n)
		}
		if len(ins.Phases) != 1<<uint(n) {
			return fmt.Errorf("circuit: diagonal over %d qubits needs %d phases, got %d", n, 1<<uint(n), len(ins.Phases))
		}
		for i, ph := range ins.Phases {
			mag := real(ph)*real(ph) + imag(ph)*imag(ph)
			if mag < 1-1e-9 || mag > 1+1e-9 {
				return fmt.Errorf("circuit: diagonal phase %d has modulus² %v, want 1", i, mag)
			}
		}
	default:
		return fmt.Errorf("circuit: unknown opcode %d", ins.Op)
	}
	seen := map[int]bool{}
	for _, q := range ins.Qubits {
		if q < 0 || q >= c.NumQubits {
			return fmt.Errorf("circuit: qubit %d out of [0,%d)", q, c.NumQubits)
		}
		if seen[q] {
			return fmt.Errorf("circuit: duplicate qubit %d in one instruction", q)
		}
		seen[q] = true
	}
	c.Instrs = append(c.Instrs, ins)
	return nil
}

// mustAppend is used by the fluent builders; operand errors there are
// programming bugs, not data errors.
func (c *Circuit) mustAppend(ins Instruction) *Circuit {
	if err := c.Append(ins); err != nil {
		panic(err)
	}
	return c
}

// Gate appends a validated gate instruction (fluent form).
func (c *Circuit) Gate(name gates.Name, qubits []int, params ...float64) *Circuit {
	return c.mustAppend(Instruction{Op: OpGate, Gate: name, Qubits: qubits, Params: params})
}

// Convenience builders for the common gates.
func (c *Circuit) H(q int) *Circuit      { return c.Gate(gates.H, []int{q}) }
func (c *Circuit) X(q int) *Circuit      { return c.Gate(gates.X, []int{q}) }
func (c *Circuit) Y(q int) *Circuit      { return c.Gate(gates.Y, []int{q}) }
func (c *Circuit) Z(q int) *Circuit      { return c.Gate(gates.Z, []int{q}) }
func (c *Circuit) S(q int) *Circuit      { return c.Gate(gates.S, []int{q}) }
func (c *Circuit) T(q int) *Circuit      { return c.Gate(gates.T, []int{q}) }
func (c *Circuit) SXGate(q int) *Circuit { return c.Gate(gates.SX, []int{q}) }
func (c *Circuit) RX(theta float64, q int) *Circuit {
	return c.Gate(gates.RX, []int{q}, theta)
}
func (c *Circuit) RY(theta float64, q int) *Circuit {
	return c.Gate(gates.RY, []int{q}, theta)
}
func (c *Circuit) RZ(theta float64, q int) *Circuit {
	return c.Gate(gates.RZ, []int{q}, theta)
}
func (c *Circuit) Phase(lambda float64, q int) *Circuit {
	return c.Gate(gates.P, []int{q}, lambda)
}
func (c *Circuit) CX(ctrl, tgt int) *Circuit { return c.Gate(gates.CX, []int{ctrl, tgt}) }
func (c *Circuit) CZGate(a, b int) *Circuit  { return c.Gate(gates.CZ, []int{a, b}) }
func (c *Circuit) CPhase(lambda float64, ctrl, tgt int) *Circuit {
	return c.Gate(gates.CP, []int{ctrl, tgt}, lambda)
}
func (c *Circuit) Swap(a, b int) *Circuit { return c.Gate(gates.SWAP, []int{a, b}) }
func (c *Circuit) CCX(c1, c2, tgt int) *Circuit {
	return c.Gate(gates.CCX, []int{c1, c2, tgt})
}
func (c *Circuit) CSwap(ctrl, a, b int) *Circuit {
	return c.Gate(gates.CSWAP, []int{ctrl, a, b})
}

// Measure appends a measurement of qubit q into classical bit cb.
func (c *Circuit) Measure(q, cb int) *Circuit {
	return c.mustAppend(Instruction{Op: OpMeasure, Qubits: []int{q}, Clbits: []int{cb}})
}

// MeasureAll measures qubit i into clbit i for every qubit; the circuit
// must have NumClbits >= NumQubits.
func (c *Circuit) MeasureAll() *Circuit {
	for q := 0; q < c.NumQubits; q++ {
		c.Measure(q, q)
	}
	return c
}

// Barrier appends a scheduling barrier across the given qubits (all qubits
// if none listed).
func (c *Circuit) Barrier(qubits ...int) *Circuit {
	return c.mustAppend(Instruction{Op: OpBarrier, Qubits: qubits})
}

// Permute appends a native permutation over qubits.
func (c *Circuit) Permute(qubits []int, perm []uint64) error {
	return c.Append(Instruction{Op: OpPermute, Qubits: qubits, Perm: perm})
}

// Init appends a native state initialization over qubits.
func (c *Circuit) Init(qubits []int, amps []complex128) error {
	return c.Append(Instruction{Op: OpInit, Qubits: qubits, Amps: amps})
}

// Diagonal appends a native diagonal unitary over qubits.
func (c *Circuit) Diagonal(qubits []int, phases []complex128) error {
	return c.Append(Instruction{Op: OpDiagonal, Qubits: qubits, Phases: phases})
}

// Copy returns a deep copy.
func (c *Circuit) Copy() *Circuit {
	out := New(c.NumQubits, c.NumClbits)
	out.Instrs = make([]Instruction, len(c.Instrs))
	for i, ins := range c.Instrs {
		cp := ins
		cp.Qubits = append([]int(nil), ins.Qubits...)
		cp.Params = append([]float64(nil), ins.Params...)
		cp.Clbits = append([]int(nil), ins.Clbits...)
		cp.Refs = append([]ParamRef(nil), ins.Refs...)
		cp.Perm = append([]uint64(nil), ins.Perm...)
		cp.Amps = append([]complex128(nil), ins.Amps...)
		cp.Phases = append([]complex128(nil), ins.Phases...)
		out.Instrs[i] = cp
	}
	return out
}

// CountOps returns instruction counts keyed by gate name (plus "measure",
// "barrier", "permute", "init").
func (c *Circuit) CountOps() map[string]int {
	counts := map[string]int{}
	for _, ins := range c.Instrs {
		switch ins.Op {
		case OpGate:
			counts[string(ins.Gate)]++
		case OpMeasure:
			counts["measure"] += len(ins.Qubits)
		case OpBarrier:
			counts["barrier"]++
		case OpPermute:
			counts["permute"]++
		case OpInit:
			counts["init"]++
		case OpDiagonal:
			counts["diagonal"]++
		}
	}
	return counts
}

// TwoQubitCount returns the number of gates acting on exactly two qubits.
func (c *Circuit) TwoQubitCount() int {
	n := 0
	for _, ins := range c.Instrs {
		if ins.Op == OpGate && len(ins.Qubits) == 2 {
			n++
		}
	}
	return n
}

// Size returns the number of non-barrier instructions.
func (c *Circuit) Size() int {
	n := 0
	for _, ins := range c.Instrs {
		if ins.Op != OpBarrier {
			n++
		}
	}
	return n
}

// Depth returns the circuit depth: the length of the longest chain of
// instructions sharing qubits (or clbits), with barriers synchronizing
// their qubits but not counting as a level.
func (c *Circuit) Depth() int {
	qLevel := make([]int, c.NumQubits)
	cLevel := make([]int, c.NumClbits)
	depth := 0
	for _, ins := range c.Instrs {
		qubits := ins.Qubits
		if ins.Op == OpBarrier && len(qubits) == 0 {
			qubits = allQubits(c.NumQubits)
		}
		level := 0
		for _, q := range qubits {
			if qLevel[q] > level {
				level = qLevel[q]
			}
		}
		for _, cb := range ins.Clbits {
			if cLevel[cb] > level {
				level = cLevel[cb]
			}
		}
		if ins.Op != OpBarrier {
			level++
		}
		for _, q := range qubits {
			qLevel[q] = level
		}
		for _, cb := range ins.Clbits {
			cLevel[cb] = level
		}
		if level > depth {
			depth = level
		}
	}
	return depth
}

func allQubits(n int) []int {
	qs := make([]int, n)
	for i := range qs {
		qs[i] = i
	}
	return qs
}

// Inverse returns the circuit implementing the inverse unitary: gates
// inverted in reverse order. Circuits containing measurements, inits or
// permutations without inverses are rejected (permutations invert fine;
// measurement does not).
func (c *Circuit) Inverse() (*Circuit, error) {
	out := New(c.NumQubits, c.NumClbits)
	for i := len(c.Instrs) - 1; i >= 0; i-- {
		ins := c.Instrs[i]
		switch ins.Op {
		case OpGate:
			invName, invParams, err := gates.Inverse(ins.Gate, ins.Params)
			if err != nil {
				return nil, err
			}
			if err := out.Append(Instruction{Op: OpGate, Gate: invName, Qubits: append([]int(nil), ins.Qubits...), Params: invParams}); err != nil {
				return nil, err
			}
		case OpBarrier:
			if err := out.Append(ins); err != nil {
				return nil, err
			}
		case OpPermute:
			inv := make([]uint64, len(ins.Perm))
			for from, to := range ins.Perm {
				inv[to] = uint64(from)
			}
			if err := out.Append(Instruction{Op: OpPermute, Qubits: append([]int(nil), ins.Qubits...), Perm: inv}); err != nil {
				return nil, err
			}
		case OpDiagonal:
			conj := make([]complex128, len(ins.Phases))
			for i, ph := range ins.Phases {
				conj[i] = complex(real(ph), -imag(ph))
			}
			if err := out.Append(Instruction{Op: OpDiagonal, Qubits: append([]int(nil), ins.Qubits...), Phases: conj}); err != nil {
				return nil, err
			}
		default:
			return nil, fmt.Errorf("circuit: cannot invert opcode %d", ins.Op)
		}
	}
	return out, nil
}

// Compose appends other's instructions (validated against this circuit's
// registers).
func (c *Circuit) Compose(other *Circuit) error {
	for _, ins := range other.Instrs {
		if err := c.Append(ins); err != nil {
			return err
		}
	}
	return nil
}

// HasOp reports whether the circuit contains any instruction of opcode op.
func (c *Circuit) HasOp(op Opcode) bool {
	for _, ins := range c.Instrs {
		if ins.Op == op {
			return true
		}
	}
	return false
}

// MeasureMap returns the qubit→clbit mapping of all measurements in order.
func (c *Circuit) MeasureMap() map[int]int {
	m := map[int]int{}
	for _, ins := range c.Instrs {
		if ins.Op == OpMeasure {
			for i, q := range ins.Qubits {
				m[q] = ins.Clbits[i]
			}
		}
	}
	return m
}

// String renders a compact text form, one instruction per line.
func (c *Circuit) String() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "circuit(%dq, %dc):\n", c.NumQubits, c.NumClbits)
	for _, ins := range c.Instrs {
		switch ins.Op {
		case OpGate:
			if len(ins.Params) > 0 {
				fmt.Fprintf(&sb, "  %s%v %v\n", ins.Gate, ins.Params, ins.Qubits)
			} else {
				fmt.Fprintf(&sb, "  %s %v\n", ins.Gate, ins.Qubits)
			}
		case OpMeasure:
			fmt.Fprintf(&sb, "  measure %v -> %v\n", ins.Qubits, ins.Clbits)
		case OpBarrier:
			fmt.Fprintf(&sb, "  barrier %v\n", ins.Qubits)
		case OpPermute:
			fmt.Fprintf(&sb, "  permute %v\n", ins.Qubits)
		case OpInit:
			fmt.Fprintf(&sb, "  init %v\n", ins.Qubits)
		case OpDiagonal:
			fmt.Fprintf(&sb, "  diagonal %v\n", ins.Qubits)
		}
	}
	return sb.String()
}
