// Sweep scatter: the dispatcher accepts a parameter-sweep bundle as ONE
// job, splits its point grid into contiguous ranges — one per healthy
// worker — and forwards each range to its worker as an independent
// sub-sweep bundle (the template with Context.Sweep.Points sliced).
// Each range has its own watcher; when a worker dies mid-sweep only its
// unfinished ranges re-forward, finished ranges keep their results where
// they are. GET /v1/sweeps/{id} merges the per-range result sets back
// into one globally indexed set. Because BindPoint strips the sweep
// block before fingerprinting, a point bound from a sub-range template
// is bit-identical — counts, cache key, intent fingerprint — to the same
// point bound from the full template, which is what makes the scattered
// result set indistinguishable from a single-node sweep.

package fleet

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/bundle"
	"repro/internal/jobs"
	"repro/internal/jobs/store"
	"repro/internal/obs"
	"repro/internal/qop"
)

// ErrNotSweep marks a sweep-only operation on a plain job; the HTTP
// layer maps it to 400.
var ErrNotSweep = errors.New("fleet: not a sweep job")

// sweepRange is one contiguous slice [from,to) of the point grid,
// forwarded to a worker as an independent sub-sweep. Mutable fields are
// guarded by Dispatcher.mu.
type sweepRange struct {
	from, to   int
	raw        json.RawMessage // sub-sweep bundle for this range
	prefer     string          // scatter-time worker choice, for initial spread
	worker     string          // owning node ("" while unassigned)
	remote     string          // sweep job ID on that node
	avoid      string          // node to skip on the next forward
	forwards   int
	pointsDone int // remote progress, range-local
	done       bool
	failed     bool
	errMsg     string
	// profile is the worker's per-kind kernel profile for this range's
	// sub-sweep, captured opaquely when the range completes (profiled
	// submissions only).
	profile json.RawMessage
}

// stateLocked names the range's lifecycle phase for status documents.
// Callers hold Dispatcher.mu.
func (r *sweepRange) stateLocked() string {
	switch {
	case r.failed:
		return "failed"
	case r.done:
		return "done"
	case r.worker != "":
		return "running"
	default:
		return "queued"
	}
}

// pointsDoneLocked is the range-local completed-point count. Callers
// hold Dispatcher.mu.
func (r *sweepRange) pointsDoneLocked() int {
	if r.done {
		return r.to - r.from
	}
	return r.pointsDone
}

// sweepScatter is the dispatcher-side state of one sweep job. ranges is
// nil until runSweep scatters (and stays nil for terminal records
// recovered from the journal — their per-range assignments are not
// retained, only the merged outcome).
type sweepScatter struct {
	points int
	ranges []*sweepRange
}

// pointsDoneLocked sums per-range progress. Callers hold Dispatcher.mu.
func (s *sweepScatter) pointsDoneLocked() int {
	n := 0
	for _, r := range s.ranges {
		n += r.pointsDoneLocked()
	}
	return n
}

// rangeProfileDoc mirrors the worker jobs layer's aggregated sweep
// profile shape for merging range documents; kinds stay opaque rows.
type rangeProfileDoc struct {
	Points         int   `json:"points"`
	PointsProfiled int   `json:"points_profiled"`
	TotalNs        int64 `json:"total_ns"`
	Kinds          []struct {
		Kind    string `json:"kind"`
		Kernels int    `json:"kernels"`
		Ns      int64  `json:"ns"`
	} `json:"kinds"`
}

// mergedProfileLocked folds the per-range worker profile documents into
// one fleet-wide per-kind table, byte-compatible with a single worker's
// aggregated sweep profile. Nil until at least one range reported a
// profile (i.e. always nil for unprofiled sweeps). Callers hold
// Dispatcher.mu.
func (s *sweepScatter) mergedProfileLocked() json.RawMessage {
	var out rangeProfileDoc
	idx := map[string]int{}
	seen := false
	for _, r := range s.ranges {
		if len(r.profile) == 0 {
			continue
		}
		var doc rangeProfileDoc
		if err := json.Unmarshal(r.profile, &doc); err != nil {
			continue
		}
		seen = true
		out.Points += doc.Points
		out.PointsProfiled += doc.PointsProfiled
		out.TotalNs += doc.TotalNs
		for _, k := range doc.Kinds {
			i, ok := idx[k.Kind]
			if !ok {
				i = len(out.Kinds)
				idx[k.Kind] = i
				out.Kinds = append(out.Kinds, k)
				continue
			}
			out.Kinds[i].Kernels += k.Kernels
			out.Kinds[i].Ns += k.Ns
		}
	}
	if !seen {
		return nil
	}
	sort.Slice(out.Kinds, func(i, j int) bool { return out.Kinds[i].Ns > out.Kinds[j].Ns })
	raw, err := json.Marshal(out)
	if err != nil {
		return nil
	}
	return raw
}

// SubmitSweep accepts a parameter-sweep bundle as one dispatched job.
func (d *Dispatcher) SubmitSweep(b *bundle.Bundle) (Status, error) {
	return d.SubmitSweepTraced(b, "", false)
}

// SubmitSweepTraced is SubmitSweep with an explicit trace ID and profile
// flag. The grid journals as ONE record; the scatter happens after
// acceptance. profile forwards to every range's worker, whose per-kind
// kernel tables merge back into this job's status document.
func (d *Dispatcher) SubmitSweepTraced(b *bundle.Bundle, traceID string, profile bool) (Status, error) {
	if b == nil {
		return Status{}, errors.New("fleet: nil bundle")
	}
	if b.Context == nil || b.Context.Sweep == nil {
		return Status{}, errors.New("fleet: bundle has no sweep context block")
	}
	n := len(b.Context.Sweep.Points)
	if n == 0 {
		return Status{}, errors.New("fleet: sweep has no points")
	}
	if n > jobs.MaxSweepPoints {
		return Status{}, fmt.Errorf("fleet: sweep has %d points, max %d", n, jobs.MaxSweepPoints)
	}
	key, err := jobs.CacheKey(b)
	if err != nil {
		return Status{}, err
	}
	raw, err := json.Marshal(b)
	if err != nil {
		return Status{}, fmt.Errorf("fleet: marshal bundle: %w", err)
	}
	engine := jobs.ResolveEngine(b)
	now := time.Now()

	d.mu.Lock()
	if d.closed {
		d.mu.Unlock()
		return Status{}, jobs.ErrClosed
	}
	d.nextID++
	j := &fwdJob{
		id:        fmt.Sprintf("job-%08d", d.nextID),
		trace:     obs.EnsureTraceID(traceID),
		key:       key,
		engine:    engine,
		raw:       raw,
		profile:   profile,
		state:     jobs.StateQueued,
		submitted: now,
		sweep:     &sweepScatter{points: n},
		done:      make(chan struct{}),
	}
	// Sweeps skip the in-flight coalescing table: their work is spread
	// over the fleet, so there is no single "primary worker" to pin a
	// twin to.
	d.jobs[j.id] = j
	d.met.submitted.Inc()
	d.met.sweeps.Inc()
	j.spanLocked("queued", 0, fmt.Sprintf("sweep points=%d", n))
	d.enqueueLocked(j, store.Event{T: store.EvSubmitted, Job: j.id, Trace: j.trace, At: now, Key: key, Engine: engine, Bundle: raw, Points: n, Profile: profile})
	d.wg.Add(1)
	st := d.statusLocked(j)
	d.mu.Unlock()
	d.log.Info("sweep accepted", "job", j.id, "trace", j.trace, "engine", engine, "points", n)
	d.flushDirty()
	d.flushJob(j) // the 202 must not outrun the submitted event's fsync
	go d.runJob(j)
	return st, nil
}

// runSweep owns one sweep's scatter-and-watch lifecycle. Called from
// runJob, which holds the WaitGroup slot.
func (d *Dispatcher) runSweep(j *fwdJob) {
	tmpl, err := bundle.FromJSON(j.raw, qop.ValidateOptions{AllowMidCircuit: d.opts.AllowMidCircuit})
	if err != nil {
		d.failSweep(j, fmt.Sprintf("fleet: sweep template: %v", err))
		return
	}
	points := tmpl.Context.Sweep.Points

	// Scatter over however many workers are healthy right now; with none
	// reachable, wait — the journal already holds the job.
	var names []string
	for d.ctx.Err() == nil {
		names = d.healthyNames()
		if len(names) > 0 {
			break
		}
		d.mu.Lock()
		terminal := j.state.Terminal()
		d.mu.Unlock()
		if terminal || !d.sleep(d.opts.ProbeInterval, j) {
			return
		}
	}
	if d.ctx.Err() != nil {
		return
	}
	k := len(names)
	if k > len(points) {
		k = len(points)
	}
	ranges := make([]*sweepRange, 0, k)
	per, extra := len(points)/k, len(points)%k
	from := 0
	for i := 0; i < k; i++ {
		to := from + per
		if i < extra {
			to++
		}
		sub, err := subSweepRaw(tmpl, from, to)
		if err != nil {
			d.failSweep(j, fmt.Sprintf("fleet: slice sweep range [%d,%d): %v", from, to, err))
			return
		}
		ranges = append(ranges, &sweepRange{from: from, to: to, raw: sub, prefer: names[i]})
		from = to
	}

	d.mu.Lock()
	if j.state.Terminal() { // canceled while slicing
		d.mu.Unlock()
		return
	}
	j.sweep.ranges = ranges
	j.spanLocked("scattered", 0, fmt.Sprintf("%d points over %d ranges", len(points), k))
	d.mu.Unlock()
	d.log.Info("sweep scattered", "job", j.id, "trace", j.trace, "points", len(points), "ranges", k)

	var wg sync.WaitGroup
	for _, r := range ranges {
		wg.Add(1)
		go func(r *sweepRange) {
			defer wg.Done()
			d.runRange(j, r)
		}(r)
	}
	wg.Wait()

	d.mu.Lock()
	if j.state.Terminal() {
		d.mu.Unlock()
		return
	}
	allDone, errMsg := true, ""
	for _, r := range ranges {
		if r.failed && errMsg == "" {
			errMsg = r.errMsg
		}
		if !r.done {
			allDone = false
		}
	}
	switch {
	case errMsg != "":
		j.errMsg = errMsg
		d.finishLocked(j, jobs.StateFailed)
		d.enqueueLocked(j, store.Event{T: store.EvFailed, Job: j.id, Trace: j.trace, At: j.finished, Engine: j.engine, Error: errMsg})
	case allDone:
		d.finishLocked(j, jobs.StateDone)
		d.enqueueLocked(j, store.Event{T: store.EvDone, Job: j.id, Trace: j.trace, At: j.finished, Engine: j.engine})
	default:
		// Dispatcher shutting down mid-sweep: the journal keeps the job
		// queued; the next process life re-scatters it.
		d.mu.Unlock()
		return
	}
	d.mu.Unlock()
	d.flushDirty()
}

// failSweep marks the whole sweep failed before any range forwarded.
func (d *Dispatcher) failSweep(j *fwdJob, msg string) {
	d.mu.Lock()
	if j.state.Terminal() {
		d.mu.Unlock()
		return
	}
	j.errMsg = msg
	d.finishLocked(j, jobs.StateFailed)
	d.enqueueLocked(j, store.Event{T: store.EvFailed, Job: j.id, Trace: j.trace, At: j.finished, Error: msg})
	d.mu.Unlock()
	d.flushDirty()
}

// runRange owns one range's forwarding lifecycle, mirroring runJob: it
// assigns a worker, watches the remote sub-sweep, and re-forwards THIS
// range — and only this range — when its worker dies or forgets it.
func (d *Dispatcher) runRange(j *fwdJob, r *sweepRange) {
	pollFails := 0
	for d.ctx.Err() == nil {
		d.mu.Lock()
		if j.state.Terminal() || r.done || r.failed {
			d.mu.Unlock()
			return
		}
		workerName, remote := r.worker, r.remote
		d.mu.Unlock()

		if workerName == "" || remote == "" {
			if !d.forwardRange(j, r) {
				if !d.sleep(d.opts.ProbeInterval, j) {
					return
				}
			}
			pollFails = 0
			continue
		}

		w := d.workerByName(workerName)
		ctx, cancel := context.WithTimeout(d.ctx, d.opts.RequestTimeout)
		st, notFound, err := w.c.status(ctx, remote)
		cancel()
		switch {
		case err != nil:
			pollFails++
			if pollFails >= d.opts.ReforwardAfter {
				d.detachRange(j, r, workerName)
				pollFails = 0
				continue
			}
		case notFound:
			d.detachRange(j, r, workerName)
			pollFails = 0
			continue
		default:
			pollFails = 0
			if d.observeRange(j, r, st) {
				return
			}
		}
		if !d.sleep(d.opts.PollInterval, j) {
			return
		}
	}
}

// forwardRange assigns the range to a worker and POSTs its sub-sweep.
// The scatter-time preferred node is tried first so concurrent ranges
// spread across the fleet; on refusal it rotates through the remaining
// healthy workers, least-loaded first, skipping the node that just lost
// the range.
func (d *Dispatcher) forwardRange(j *fwdJob, r *sweepRange) bool {
	tried := map[string]bool{}
	d.mu.Lock()
	avoid, prefer := r.avoid, r.prefer
	d.mu.Unlock()
	if avoid != "" {
		tried[avoid] = true
	}
	for round := 0; ; {
		name := ""
		if prefer != "" && !tried[prefer] && d.workerOK(prefer) {
			name = prefer
		} else {
			name = d.leastLoaded(tried)
		}
		if name == "" {
			if round == 0 && avoid != "" {
				// Everything else is down; the avoided node may be the only
				// fleet left. Allow it.
				delete(tried, avoid)
				round++
				continue
			}
			return false
		}
		tried[name] = true
		w := d.workerByName(name)
		ctx, cancel := context.WithTimeout(d.ctx, d.opts.RequestTimeout)
		rtStart := time.Now()
		sub, err := w.c.submitSweep(ctx, r.raw, j.trace, j.profile)
		rt := time.Since(rtStart)
		cancel()
		if err != nil {
			continue // busy or unreachable: next candidate
		}
		d.met.roundtrip.Observe(rt)
		d.mu.Lock()
		if j.state.Terminal() { // canceled while forwarding
			d.mu.Unlock()
			cctx, ccancel := context.WithTimeout(d.ctx, d.opts.RequestTimeout)
			w.c.cancel(cctx, sub.ID)
			ccancel()
			return true
		}
		r.worker, r.remote = name, sub.ID
		r.avoid = ""
		r.forwards++
		reforward := r.forwards > 1
		if reforward {
			d.met.reforwarded.Inc()
			j.spanLocked("assigned", rt, fmt.Sprintf("range [%d,%d) re-forwarded to %s as %s", r.from, r.to, name, sub.ID))
		} else {
			j.spanLocked("assigned", rt, fmt.Sprintf("range [%d,%d) to %s as %s", r.from, r.to, name, sub.ID))
		}
		d.met.forwarded.Inc()
		w.outstanding++
		d.enqueueLocked(j, store.Event{T: store.EvAssigned, Job: j.id, Trace: j.trace, At: time.Now(), Worker: name, Remote: sub.ID, From: r.from, To: r.to})
		d.mu.Unlock()
		if reforward {
			d.log.Warn("sweep range re-forwarded", "job", j.id, "trace", j.trace, "from", r.from, "to", r.to, "worker", name, "remote", sub.ID)
			obs.RecordDur(obs.FlightFleetForward, j.id, fmt.Sprintf("range [%d,%d) re-forwarded to %s as %s", r.from, r.to, name, sub.ID), rt)
		} else {
			d.log.Info("sweep range forwarded", "job", j.id, "trace", j.trace, "from", r.from, "to", r.to, "worker", name, "remote", sub.ID)
			obs.RecordDur(obs.FlightFleetForward, j.id, fmt.Sprintf("range [%d,%d) to %s as %s", r.from, r.to, name, sub.ID), rt)
		}
		d.flushDirty()
		return true
	}
}

// workerOK reports whether the named worker exists and is healthy.
func (d *Dispatcher) workerOK(name string) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	w := d.workers[name]
	return w != nil && w.healthy
}

// leastLoaded picks the healthy worker with the fewest outstanding
// dispatched jobs, excluding tried.
func (d *Dispatcher) leastLoaded(tried map[string]bool) string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var least *worker
	for _, name := range d.names {
		w := d.workers[name]
		if w == nil || !w.healthy || tried[name] {
			continue
		}
		if least == nil || w.outstanding < least.outstanding {
			least = w
		}
	}
	if least == nil {
		return ""
	}
	return least.name
}

// healthyNames snapshots the healthy workers in configured order.
func (d *Dispatcher) healthyNames() []string {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []string
	for _, name := range d.names {
		if w := d.workers[name]; w != nil && w.healthy {
			out = append(out, name)
		}
	}
	return out
}

// detachRange severs one range from a worker that died or forgot it;
// the range's watcher forwards it elsewhere next. Other ranges keep
// their assignments — only unfinished work moves.
func (d *Dispatcher) detachRange(j *fwdJob, r *sweepRange, workerName string) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if j.state.Terminal() || r.done || r.failed {
		return
	}
	if r.worker != workerName { // raced with a re-forward
		return
	}
	r.worker, r.remote = "", ""
	r.avoid = workerName
	r.pointsDone = 0 // the replacement worker re-runs the whole range
	if w := d.workers[workerName]; w != nil {
		w.outstanding--
	}
	j.spanLocked("detached", 0, fmt.Sprintf("range [%d,%d): worker %s lost the sub-sweep", r.from, r.to, workerName))
	obs.Record(obs.FlightFleetDetach, j.id, fmt.Sprintf("range [%d,%d): worker %s lost the sub-sweep", r.from, r.to, workerName))
	d.log.Warn("sweep range detached", "job", j.id, "trace", j.trace, "from", r.from, "to", r.to, "worker", workerName)
}

// observeRange folds a remote sub-sweep status into the range. Returns
// true when the range reached a terminal state.
func (d *Dispatcher) observeRange(j *fwdJob, r *sweepRange, st remoteStatus) bool {
	d.mu.Lock()
	if j.state.Terminal() || r.done || r.failed {
		d.mu.Unlock()
		return true
	}
	if st.Engine != "" {
		j.engine = st.Engine
	}
	if st.PointsDone > r.pointsDone {
		r.pointsDone = st.PointsDone
	}
	if len(st.Profile) > 0 {
		// The sub-sweep's worker-aggregated kernel table; overwritten on
		// re-forward so the table matches the execution that survived.
		r.profile = st.Profile
	}
	enqueued := false
	switch jobs.State(st.State) {
	case jobs.StateRunning:
		if j.state == jobs.StateQueued {
			j.state = jobs.StateRunning
			j.started = time.Now()
			j.spanLocked("started", 0, "first range running on "+r.worker)
			d.enqueueLocked(j, store.Event{T: store.EvStarted, Job: j.id, Trace: j.trace, At: j.started, Shards: st.Shards})
			enqueued = true
		}
	case jobs.StateDone:
		r.done = true
		r.pointsDone = r.to - r.from
		if w := d.workers[r.worker]; w != nil {
			w.outstanding--
		}
		j.spanLocked("range done", 0, fmt.Sprintf("[%d,%d) on %s", r.from, r.to, r.worker))
		obs.Record(obs.FlightSweepRange, j.id, fmt.Sprintf("range [%d,%d) done on %s", r.from, r.to, r.worker))
	case jobs.StateFailed:
		r.failed = true
		r.errMsg = st.Error
		if w := d.workers[r.worker]; w != nil {
			w.outstanding--
		}
		j.spanLocked("range failed", 0, fmt.Sprintf("[%d,%d) on %s: %s", r.from, r.to, r.worker, st.Error))
		obs.Record(obs.FlightSweepRange, j.id, fmt.Sprintf("range [%d,%d) failed on %s: %s", r.from, r.to, r.worker, st.Error))
	case jobs.StateCanceled:
		// Canceled out-of-band on the worker: treat as a range failure so
		// the sweep surfaces it rather than hanging.
		r.failed = true
		r.errMsg = fmt.Sprintf("fleet: range [%d,%d) canceled on worker %s", r.from, r.to, r.worker)
	}
	terminal := r.done || r.failed
	d.mu.Unlock()
	if enqueued {
		d.flushDirty()
	}
	return terminal
}

// subSweepRaw renders the template with its point grid sliced to
// [from,to) — the independent sub-sweep bundle one worker runs. Only the
// context block is copied; registers and operators are shared.
func subSweepRaw(tmpl *bundle.Bundle, from, to int) (json.RawMessage, error) {
	cp := *tmpl
	ctx := *tmpl.Context
	sw := *ctx.Sweep
	sw.Points = sw.Points[from:to]
	ctx.Sweep = &sw
	cp.Context = &ctx
	raw, err := json.Marshal(&cp)
	if err != nil {
		return nil, err
	}
	return raw, nil
}

// SweepPointJSON is one merged per-point result in a dispatcher sweep
// result document; Index is the global grid index.
type SweepPointJSON struct {
	Index   int            `json:"index"`
	Engine  string         `json:"engine,omitempty"`
	Samples int            `json:"samples,omitempty"`
	Entries []any          `json:"entries"`
	Meta    map[string]any `json:"meta,omitempty"`
}

// remoteSweepDoc is a worker's GET /v1/sweeps/{id} document (the fields
// the dispatcher merges).
type remoteSweepDoc struct {
	Engine  string           `json:"engine"`
	Results []SweepPointJSON `json:"results"`
}

// SweepResult merges the per-range result sets from their owning
// workers into one globally indexed set. Only terminal sweeps answer;
// a sweep recovered as terminal from the journal after a dispatcher
// restart no longer knows its range assignments and reports that
// explicitly.
func (d *Dispatcher) SweepResult(ctx context.Context, id string) ([]SweepPointJSON, string, error) {
	d.mu.Lock()
	j, ok := d.jobs[id]
	if !ok {
		d.mu.Unlock()
		return nil, "", fmt.Errorf("%w: %q", jobs.ErrNotFound, id)
	}
	if j.sweep == nil {
		d.mu.Unlock()
		return nil, "", fmt.Errorf("%w: %q", ErrNotSweep, id)
	}
	state, engine, errMsg := j.state, j.engine, j.errMsg
	type rloc struct {
		from, to       int
		worker, remote string
	}
	locs := make([]rloc, 0, len(j.sweep.ranges))
	for _, r := range j.sweep.ranges {
		locs = append(locs, rloc{from: r.from, to: r.to, worker: r.worker, remote: r.remote})
	}
	points := j.sweep.points
	d.mu.Unlock()

	switch state {
	case jobs.StateFailed:
		return nil, "", fmt.Errorf("%w: %s", ErrJobFailed, errMsg)
	case jobs.StateCanceled:
		return nil, "", fmt.Errorf("%w: %q", jobs.ErrCanceled, id)
	case jobs.StateDone:
	default:
		return nil, "", fmt.Errorf("%w: %q is %s", jobs.ErrNotFinished, id, state)
	}
	if len(locs) == 0 {
		return nil, "", fmt.Errorf("fleet: sweep %q finished before this dispatcher started; its range assignments were not retained — resubmit the sweep", id)
	}
	merged := make([]SweepPointJSON, points)
	for _, loc := range locs {
		w := d.workerByName(loc.worker)
		if w == nil {
			return nil, "", fmt.Errorf("fleet: sweep %q range [%d,%d) belongs to unknown worker %q", id, loc.from, loc.to, loc.worker)
		}
		cctx, cancel := context.WithTimeout(ctx, d.opts.RequestTimeout)
		code, body, err := w.c.sweepResultRaw(cctx, loc.remote)
		cancel()
		if err != nil {
			return nil, "", err
		}
		if code != 200 {
			return nil, "", fmt.Errorf("fleet: %s: sweep result for range [%d,%d): %s", loc.worker, loc.from, loc.to, decodeErr(code, body))
		}
		var doc remoteSweepDoc
		if err := json.Unmarshal(body, &doc); err != nil {
			return nil, "", fmt.Errorf("fleet: %s: sweep result body: %w", loc.worker, err)
		}
		if len(doc.Results) != loc.to-loc.from {
			return nil, "", fmt.Errorf("fleet: %s answered %d results for range [%d,%d)", loc.worker, len(doc.Results), loc.from, loc.to)
		}
		for _, pt := range doc.Results {
			gi := loc.from + pt.Index
			if gi < 0 || gi >= points {
				return nil, "", fmt.Errorf("fleet: %s answered out-of-range point %d for range [%d,%d)", loc.worker, pt.Index, loc.from, loc.to)
			}
			pt.Index = gi
			merged[gi] = pt
		}
	}
	return merged, engine, nil
}

// WaitTimeout blocks until the job is terminal or the duration elapses,
// then returns its snapshot — the long-poll primitive behind ?wait=.
// Non-positive durations degenerate to Status.
func (d *Dispatcher) WaitTimeout(id string, dur time.Duration) (Status, error) {
	d.mu.Lock()
	j, ok := d.jobs[id]
	d.mu.Unlock()
	if !ok {
		return Status{}, fmt.Errorf("%w: %q", jobs.ErrNotFound, id)
	}
	if dur > 0 {
		t := time.NewTimer(dur)
		select {
		case <-j.done:
		case <-t.C:
		}
		t.Stop()
	}
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.statusLocked(j), nil
}
