package result

import (
	"fmt"
	"math"
)

// This file provides the §4.4 "expectation/estimation helpers": estimating
// diagonal (Z-basis) observables and their uncertainties from sampled
// counts — the classical half of every variational loop on the gate path.

// ZExpectation estimates ⟨Z_{b1} Z_{b2} …⟩ over the given register bits
// from the decoded entries: each sample contributes (−1)^(parity of the
// selected bits).
func ZExpectation(entries []Entry, bits []int) (float64, error) {
	if len(bits) == 0 {
		return 0, fmt.Errorf("result: empty Z string")
	}
	total := 0
	acc := 0.0
	for _, e := range entries {
		parity := 0
		for _, b := range bits {
			if b < 0 || b > 63 {
				return 0, fmt.Errorf("result: bit index %d out of range", b)
			}
			parity ^= int(e.Index >> uint(b) & 1)
		}
		sign := 1.0
		if parity == 1 {
			sign = -1
		}
		acc += sign * float64(e.Count)
		total += e.Count
	}
	if total == 0 {
		return 0, fmt.Errorf("result: no samples")
	}
	return acc / float64(total), nil
}

// IsingEnergyExpectation estimates ⟨H⟩ for an Ising Hamiltonian
// H = Σ h_i Z_i + Σ J_ij Z_i Z_j from counts, with its standard error —
// exactly what a QAOA outer loop consumes.
func IsingEnergyExpectation(entries []Entry, h []float64, couplings map[[2]int]float64) (mean, stderr float64, err error) {
	total := 0
	for _, e := range entries {
		total += e.Count
	}
	if total == 0 {
		return 0, 0, fmt.Errorf("result: no samples")
	}
	sum := 0.0
	sumSq := 0.0
	for _, e := range entries {
		energy := 0.0
		for i, hi := range h {
			if hi == 0 {
				continue
			}
			energy += hi * zval(e.Index, i)
		}
		for key, j := range couplings {
			energy += j * zval(e.Index, key[0]) * zval(e.Index, key[1])
		}
		w := float64(e.Count)
		sum += energy * w
		sumSq += energy * energy * w
	}
	mean = sum / float64(total)
	variance := sumSq/float64(total) - mean*mean
	if variance < 0 {
		variance = 0
	}
	if total > 1 {
		stderr = math.Sqrt(variance / float64(total-1))
	}
	return mean, stderr, nil
}

// zval maps bit b of index to the Z eigenvalue: |0⟩ → +1, |1⟩ → −1.
func zval(index uint64, bit int) float64 {
	if index>>uint(bit)&1 == 1 {
		return -1
	}
	return 1
}
