// Package obsfix is an obsconv fixture registering instruments against
// the real internal/obs registry.
package obsfix

import "repro/internal/obs"

// Register builds the fixture's instrument set.
func Register(reg *obs.Registry) {
	reg.Counter("fix_ops_total", "Operations processed.") // near-miss: convention-clean
	reg.Counter("fix_requests", "Requests seen.")         // want `obsconv: counter "fix_requests" must end in _total`
	reg.Gauge("fix_depth_total", "Queue depth.")          // want `obsconv: gauge "fix_depth_total" must not end in _total`
	reg.Histogram("fix_lat_bucket", "Latency.", nil)      // want `obsconv: metric name "fix_lat_bucket" ends in _bucket`
	reg.Gauge("FixBadName", "Camel case.")                // want `obsconv: metric name "FixBadName" is not lower-snake_case`
	reg.Counter("fix_dup_total", "First registration.")
	reg.Counter("fix_dup_total", "Second registration.") // want `obsconv: duplicate registration of "fix_dup_total" in Register`
}

// Lookup reads back one metric that Register created and one that
// nothing ever registers.
func Lookup(reg *obs.Registry) {
	reg.Counter("fix_ops_total", "")  // near-miss: registered with help in Register
	reg.Counter("fix_typo_total", "") // want `obsconv: metric "fix_typo_total" has empty help and no registration with help`
}

// Clash registers an existing name under another kind, which the
// registry would only catch by panicking at runtime.
func Clash(reg *obs.Registry) {
	reg.Gauge("fix_ops_total", "Operations, but as a gauge.") // want `obsconv: gauge "fix_ops_total" must not end in _total` // want `obsconv: metric "fix_ops_total" registered as Gauge here but as Counter elsewhere`
}
