// Command qmlserve runs the middle layer as an HTTP job service: the
// queued, job-ID-addressed consumption model of production quantum
// backends (IBM Quantum's job API, D-Wave Leap), backed by the
// internal/jobs worker pool and content-addressed result cache.
//
//	qmlserve -addr :8080 -workers 8 -queue 256 -cache 4096 -data-dir /var/lib/qmlserve
//
// Submit the quickstart bundle and poll it:
//
//	curl -s -X POST --data-binary @job.json localhost:8080/v1/jobs
//	  → {"id":"job-00000001","state":"queued","cache_hit":false}
//	curl -s localhost:8080/v1/jobs/job-00000001
//	  → {"id":"job-00000001","state":"done","engine":"gate.aer_simulator",...}
//	curl -s localhost:8080/v1/jobs/job-00000001/result
//	  → {"engine":"gate.aer_simulator","samples":10000,"entries":[...]}
//	curl -s 'localhost:8080/v1/jobs?state=done&limit=20'   # history listing
//	curl -s localhost:8080/v1/engines
//	curl -s localhost:8080/v1/stats
//	curl -s localhost:8080/metrics                         # Prometheus text format
//
// Re-POSTing an identical bundle (same intent, context, shots, seed)
// returns a new job ID already in state "done" with "cache_hit": true —
// the result is served from the content-addressed cache without
// re-execution, visible in /v1/stats as cache_hits. A duplicate of a job
// that is *currently executing* coalesces onto it instead of running
// twice ("coalesced": true in its status, coalesced in /v1/stats).
//
// The pool doubles as the statevector shard scheduler: a job that starts
// while the pool is otherwise idle is granted -max-shards parallel shards
// (default GOMAXPROCS) so one big simulation spans every core, while jobs
// running alongside others stay single-shard. POST /v1/jobs?shards=N pins
// the grant per job; /v1/stats reports max_shards and wide_jobs.
//
// A parameter sweep — one bundle whose context carries a sweep block
// (parameter names + point grid) — submits as ONE job via POST
// /v1/sweeps: one journal record, one queue slot, the parametric plan
// compiled once and bound per point, every point's counts and cache key
// bit-identical to submitting that point concretely. GET
// /v1/sweeps/{id} returns the indexed per-point result set, and GET
// /v1/jobs/{id} reports grid progress (points/points_done). Status
// polls long-poll with ?wait=<duration> (capped at 60s): the request
// parks until the job reaches a terminal state or the wait expires.
//
// # Observability
//
// GET /metrics serves the internal/obs registry in Prometheus text
// exposition format: the jobs_*/store_*/fleet_* counters behind
// /v1/stats, latency histograms (queue wait, execution, per-stage
// compile/execute/sample, journal append and fsync, dispatcher→worker
// round trips), Go runtime gauges (go_goroutines, heap, GC) and a
// build_info gauge carrying the VCS revision.
//
// Every job carries a trace ID: inbound X-Trace-Id is honored (else one
// is generated), echoed on the 202, recorded in the journal, forwarded
// dispatcher→worker, and attached to every structured log line. GET
// /v1/jobs/{id} includes the trace ID and a per-job span log (queued →
// started → transpile/compile/execute/sample → done).
//
// A submission carrying a top-level "profile": true (or POSTed with
// ?profile=true) runs with the simulator's kernel-granular profiler on:
// its status and result documents gain a "profile" table — one row per
// fused kernel with wall time, per-shard min/max and the imbalance
// ratio — whose total matches the execute span. Profiled sweeps report
// per-kind aggregates over the whole grid. Profiled submissions cache
// separately from unprofiled ones; counts are bit-identical either way.
//
// Logs are structured (log/slog); -log-format picks text (default) or
// json. -debug-addr starts a second listener exposing /debug/pprof/*,
// /debug/events and a /metrics copy — keep it on a loopback or
// otherwise private address:
//
//	qmlserve -addr :8080 -debug-addr 127.0.0.1:6060
//	go tool pprof http://127.0.0.1:6060/debug/pprof/profile?seconds=10
//	curl -s http://127.0.0.1:6060/debug/events   # flight recorder dump
//
// /debug/events is the always-on flight recorder (internal/obs): a
// fixed-size lock-free ring of recent structured events — job
// transitions, kernel-batch completions, fleet forwards and detaches,
// journal fsync stalls — dumped as JSON, newest last. The same tail is
// attached to panic reports, so a crash carries what the process was
// doing in its final moments.
//
// # Durability
//
// With -data-dir the service survives crashes: every job transition
// appends to an append-only JSONL journal and results persist as
// content-addressed files (internal/jobs/store). On startup the journal
// replays — terminal jobs answer GET /v1/jobs/{id} and /result exactly as
// before the restart, and jobs that were queued or running when the
// process died are requeued and re-run (execution is deterministic in
// bundle+shots+seed, so the re-run's counts are the ones the lost run
// would have produced). -fsync picks the journal fsync policy: "always"
// (default — an acknowledged submission survives an immediate crash),
// "group" (the same guarantee with concurrent appenders sharing one
// fsync barrier), "terminal" or "none". Without -data-dir the service is
// in-memory, as before.
//
// On SIGINT/SIGTERM the server drains: in-flight HTTP requests get up to
// 10 s, the pool finishes running and queued jobs (new submissions fail
// fast with 503), and the journal is flushed and closed before exit.
//
// # Fleet dispatch
//
// With -dispatch the same binary becomes a fleet front-end instead of a
// worker: it runs no pool of its own and forwards every job to the
// listed qmlserve nodes over the same /v1 protocol (internal/fleet).
//
//	qmlserve -addr :8080 -dispatch 10.0.0.1:8081,10.0.0.2:8081 -data-dir /var/lib/qmlserve
//
// Routing is load-aware with cache-key affinity (identical bundles land
// on the worker that already caches their result), dead workers are
// ejected by health probes and their in-flight jobs re-forwarded, and
// with -data-dir every accepted job plus its worker assignment is
// journaled — by default under the group-commit fsync policy — so both
// worker deaths and dispatcher restarts preserve accepted work.
// -probe-interval and -poll-interval tune the health and job-status
// cadences.
//
// The dispatcher speaks the sweep surface too: a POST /v1/sweeps grid
// is scattered point-range-wise across the healthy workers as
// independent sub-sweeps, a dead worker's unfinished ranges (and only
// those) re-forward to survivors, and GET /v1/sweeps/{id} merges the
// per-range documents back into one globally indexed result set —
// per-point identical to a single-node run of the same grid. ?wait=
// long-polling works on the dispatcher's GET /v1/jobs/{id} as well.
package main

import (
	"context"
	"flag"
	"fmt"
	"log/slog"
	"net"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"repro/internal/backend"
	"repro/internal/fleet"
	"repro/internal/jobs"
	"repro/internal/jobs/store"
	"repro/internal/obs"
)

// config is the flag set both serving modes share.
type config struct {
	addr      string
	dataDir   string
	fsync     string
	debugAddr string
	log       *slog.Logger
	reg       *obs.Registry
}

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	workers := flag.Int("workers", 0, "worker goroutines (0 = NumCPU)")
	queue := flag.Int("queue", 64, "bounded queue depth (full queue → 429)")
	cache := flag.Int("cache", 1024, "result-cache entries (negative disables)")
	maxShards := flag.Int("max-shards", 0, "statevector shards granted to a lone simulation job (0 = GOMAXPROCS)")
	dataDir := flag.String("data-dir", "", "journal + result directory for crash-safe restarts (empty = in-memory)")
	fsync := flag.String("fsync", "", "journal fsync policy: always|group|terminal|none (default: always, or group in -dispatch mode)")
	dispatch := flag.String("dispatch", "", "comma-separated worker base URLs: serve as a fleet dispatcher instead of a worker")
	probeInterval := flag.Duration("probe-interval", time.Second, "dispatcher: worker health probe cadence")
	pollInterval := flag.Duration("poll-interval", 100*time.Millisecond, "dispatcher: remote job status poll cadence")
	logFormat := flag.String("log-format", "text", "structured log format: text|json")
	debugAddr := flag.String("debug-addr", "", "debug listener address for /debug/pprof and /metrics (empty = off; keep it private)")
	flag.Parse()
	if flag.NArg() != 0 {
		fmt.Fprintln(os.Stderr, "usage: qmlserve [-addr :8080] [-workers n] [-queue n] [-cache n] [-max-shards n] [-data-dir dir] [-fsync always|group|terminal|none] [-dispatch w1,w2,...] [-log-format text|json] [-debug-addr :6060]")
		os.Exit(2)
	}
	if *logFormat != "text" && *logFormat != "json" {
		fmt.Fprintf(os.Stderr, "qmlserve: unknown -log-format %q (want text or json)\n", *logFormat)
		os.Exit(2)
	}
	if *fsync == "" {
		// Workers default to per-event fsync; the dispatcher journals
		// from concurrent request goroutines, where group commit shares
		// the fsync barriers.
		if *dispatch != "" {
			*fsync = "group"
		} else {
			*fsync = "always"
		}
	}
	cfg := config{
		addr:      *addr,
		dataDir:   *dataDir,
		fsync:     *fsync,
		debugAddr: *debugAddr,
		log:       obs.NewLogger(*logFormat, os.Stderr),
		// One process-wide registry: subsystem instruments, Go runtime
		// gauges and the build_info gauge all land here, so /metrics on
		// the main and debug listeners serve one coherent exposition.
		reg: obs.NewRegistry(),
	}
	obs.RegisterRuntime(cfg.reg)
	obs.RegisterBuildInfo(cfg.reg)
	var err error
	if *dispatch != "" {
		err = runDispatch(cfg, *dispatch, *probeInterval, *pollInterval)
	} else {
		err = run(cfg, *workers, *queue, *cache, *maxShards)
	}
	if err != nil {
		cfg.log.Error("qmlserve exiting", "err", err)
		os.Exit(1)
	}
}

// startDebug brings up the -debug-addr listener: net/http/pprof's
// handlers plus a /metrics copy, on its own mux so none of it leaks onto
// the service address. Returns a stop func (nil addr = no-op).
func startDebug(cfg config) (func(), error) {
	if cfg.debugAddr == "" {
		return func() {}, nil
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	// The flight recorder: the most recent structured events (job
	// transitions, kernel batches, fleet forwards, fsync stalls) as JSON,
	// for "what was happening just now" forensics without log scraping.
	mux.Handle("GET /debug/events", obs.DefaultFlight().Handler())
	mux.Handle("GET /metrics", obs.Handler(cfg.reg, obs.Default()))
	ln, err := net.Listen("tcp", cfg.debugAddr)
	if err != nil {
		return nil, fmt.Errorf("debug listener: %w", err)
	}
	srv := &http.Server{Handler: mux}
	go srv.Serve(ln)
	cfg.log.Info("qmlserve debug listening", "addr", ln.Addr().String())
	return func() { srv.Close() }, nil
}

// runDispatch brings up the fleet front-end, blocks until
// SIGINT/SIGTERM, and tears down in order: HTTP drain, dispatcher stop,
// journal flush + close. Jobs still running on workers keep running;
// the journal carries their assignments to the next dispatcher life.
func runDispatch(cfg config, dispatch string, probeInterval, pollInterval time.Duration) error {
	var st *store.Store
	if cfg.dataDir != "" {
		policy, err := store.ParseSyncPolicy(cfg.fsync)
		if err != nil {
			return err
		}
		st, err = store.Open(cfg.dataDir, store.Options{Sync: policy, Metrics: cfg.reg})
		if err != nil {
			return err
		}
	}
	d, err := fleet.New(fleet.Options{
		Workers:       strings.Split(dispatch, ","),
		Store:         st,
		ProbeInterval: probeInterval,
		PollInterval:  pollInterval,
		Logger:        cfg.log,
		Metrics:       cfg.reg,
	})
	if err != nil {
		if st != nil {
			st.Close()
		}
		return err
	}
	if st != nil {
		s := d.Stats()
		cfg.log.Info("dispatcher recovered journal", "dir", cfg.dataDir, "recovered", s.Recovered, "reattached", s.Reattached)
	}

	stopDebug, err := startDebug(cfg)
	if err != nil {
		d.Close()
		if st != nil {
			st.Close()
		}
		return err
	}
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		stopDebug()
		d.Close()
		if st != nil {
			st.Close()
		}
		return err
	}
	srv := &http.Server{Handler: fleet.NewHandler(d)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	cfg.log.Info("qmlserve listening", "addr", ln.Addr().String(), "mode", "dispatcher", "fleet", dispatch)

	select {
	case err := <-errc:
		stopDebug()
		d.Close()
		if st != nil {
			st.Close()
		}
		return err
	case <-ctx.Done():
	}

	cfg.log.Info("dispatcher shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		cfg.log.Warn("shutdown", "err", err)
	}
	stopDebug()
	d.Close()
	if st != nil {
		if err := st.Close(); err != nil {
			cfg.log.Warn("closing journal", "err", err)
		}
	}
	s := d.Stats()
	cfg.log.Info("dispatcher done",
		"submitted", s.Submitted, "completed", s.Completed, "failed", s.Failed,
		"forwarded", s.Forwarded, "reforwarded", s.Reforwarded, "journal_events", s.Events)
	return nil
}

// run brings the service up, blocks until SIGINT/SIGTERM or a listener
// failure, and tears it down in order: HTTP drain, pool drain, journal
// flush + close.
func run(cfg config, workers, queue, cache, maxShards int) error {
	var st *store.Store
	if cfg.dataDir != "" {
		policy, err := store.ParseSyncPolicy(cfg.fsync)
		if err != nil {
			return err
		}
		st, err = store.Open(cfg.dataDir, store.Options{Sync: policy, Metrics: cfg.reg})
		if err != nil {
			return err
		}
	}

	pool := jobs.NewPool(jobs.Options{
		Workers: workers, QueueDepth: queue, CacheSize: cache,
		MaxShards: maxShards, Store: st,
		Logger: cfg.log, Metrics: cfg.reg,
	})
	if st != nil {
		s := pool.Stats()
		cfg.log.Info("recovered journal", "dir", cfg.dataDir, "recovered", s.Recovered, "requeued", s.Requeued, "disk_results", s.Results)
	}

	stopDebug, err := startDebug(cfg)
	if err != nil {
		pool.Close()
		if st != nil {
			st.Close()
		}
		return err
	}
	// An explicit listener (not ListenAndServe) so ":0" works and the
	// bound address is known — the restart test leans on both.
	ln, err := net.Listen("tcp", cfg.addr)
	if err != nil {
		stopDebug()
		pool.Close()
		if st != nil {
			st.Close()
		}
		return err
	}
	srv := &http.Server{Handler: jobs.NewHandler(pool)}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() { errc <- srv.Serve(ln) }()
	cfg.log.Info("qmlserve listening", "addr", ln.Addr().String(), "mode", "worker", "engines", fmt.Sprint(backend.Engines()))

	select {
	case err := <-errc:
		stopDebug()
		pool.Close()
		if st != nil {
			st.Close()
		}
		return err
	case <-ctx.Done():
	}

	cfg.log.Info("shutting down")
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		// DeadlineExceeded here means in-flight requests were cut off.
		cfg.log.Warn("shutdown", "err", err)
	}
	stopDebug()
	// Drain the pool: running and queued jobs finish (journaling their
	// terminal states), coalesced waiters are released with their
	// primaries, late submissions fail fast with ErrClosed.
	pool.Close()
	if st != nil {
		if err := st.Close(); err != nil {
			cfg.log.Warn("closing journal", "err", err)
		}
	}
	s := pool.Stats()
	cfg.log.Info("done",
		"submitted", s.Submitted, "completed", s.Completed, "failed", s.Failed,
		"cache_hits", s.CacheHits, "journal_events", s.Events)
	return nil
}
