package main

import (
	"fmt"
	"testing"

	"repro/internal/runtime"
)

const bellQASM = `OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[2];
h q[0];
cx q[0], q[1];
measure q[0] -> c[0];
measure q[1] -> c[1];
`

// TestQASMBundleBell: the -qasm ingestion path parses a Bell circuit,
// wraps it as a GATE_LIST bundle, and the gate path samples only the
// two correlated outcomes. The same source and seed reproduce the same
// counts — QASM runs inherit the runtime's determinism contract.
func TestQASMBundleBell(t *testing.T) {
	b, err := qasmBundle(bellQASM, "", 2048, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := runtime.Submit(b, runtime.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Samples != 2048 {
		t.Fatalf("samples = %d, want 2048", res.Samples)
	}
	total := 0
	for _, e := range res.Entries {
		if e.Bitstring != "00" && e.Bitstring != "11" {
			t.Fatalf("Bell state sampled %q", e.Bitstring)
		}
		total += e.Count
	}
	if total != 2048 {
		t.Fatalf("counts sum to %d, want 2048", total)
	}

	b2, err := qasmBundle(bellQASM, "", 2048, 9)
	if err != nil {
		t.Fatal(err)
	}
	res2, err := runtime.Submit(b2, runtime.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(res2.Entries) != fmt.Sprint(res.Entries) {
		t.Fatalf("same QASM+seed produced different counts:\n %v\n %v", res.Entries, res2.Entries)
	}
}

// TestQASMBundleRejects: parse and validation failures surface as
// errors, not panics.
func TestQASMBundleRejects(t *testing.T) {
	if _, err := qasmBundle("qreg q[2];\nh q[0];", "", 16, 1); err == nil {
		t.Fatal("missing OPENQASM header accepted")
	}
	if _, err := qasmBundle("OPENQASM 2.0;\ncreg c[2];", "", 16, 1); err == nil {
		t.Fatal("no quantum register accepted")
	}
}
