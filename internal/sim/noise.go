package sim

import (
	"fmt"
	"sort"

	"repro/internal/circuit"
	"repro/internal/gates"
	"repro/internal/rng"
)

// NoiseModel parametrizes stochastic Pauli (depolarizing-style) noise for
// trajectory simulation: after every gate, each touched qubit suffers a
// uniformly random Pauli error with the class's probability; measured
// bits flip with ReadoutFlip. This is the quantum-trajectory counterpart
// of Aer's basic device noise models, and gives the middle layer's QEC
// context something real to protect against.
type NoiseModel struct {
	Prob1Q      float64 // per-qubit error probability after a 1-qubit gate
	Prob2Q      float64 // per-qubit error probability after a multi-qubit gate
	ReadoutFlip float64 // classical bit-flip probability at measurement
}

// Validate checks probability ranges.
func (n NoiseModel) Validate() error {
	for _, p := range []float64{n.Prob1Q, n.Prob2Q, n.ReadoutFlip} {
		if p < 0 || p > 1 {
			return fmt.Errorf("sim: noise probability %v out of [0,1]", p)
		}
	}
	return nil
}

// Zero reports whether the model injects no noise at all.
func (n NoiseModel) Zero() bool {
	return n.Prob1Q == 0 && n.Prob2Q == 0 && n.ReadoutFlip == 0
}

// RunNoisy executes the circuit under the noise model by quantum
// trajectories: each shot evolves its own statevector with randomly
// inserted Pauli errors and samples one outcome. Cost is shots × circuit,
// so it suits the small-register workloads of the evaluation; noiseless
// runs fall through to the fast path.
func RunNoisy(c *circuit.Circuit, noise NoiseModel, opts Options) (*Result, error) {
	if err := noise.Validate(); err != nil {
		return nil, err
	}
	if noise.Zero() {
		return Run(c, opts)
	}
	if opts.Shots < 0 {
		return nil, fmt.Errorf("sim: negative shot count %d", opts.Shots)
	}
	mm := c.MeasureMap()
	res := &Result{Counts: Counts{}, Shots: opts.Shots}
	master := rng.New(opts.Seed)
	paulis := [3]gates.Name{gates.X, gates.Y, gates.Z}

	qubits := make([]int, 0, len(mm))
	for q := range mm {
		qubits = append(qubits, q)
	}
	sort.Ints(qubits)

	for shot := 0; shot < opts.Shots; shot++ {
		r := master.Child()
		st, err := NewState(c.NumQubits)
		if err != nil {
			return nil, err
		}
		seenMeasure := false
		for idx, ins := range c.Instrs {
			switch ins.Op {
			case circuit.OpMeasure:
				seenMeasure = true
				continue
			case circuit.OpBarrier:
				continue
			}
			if seenMeasure {
				return nil, fmt.Errorf("sim: instruction %d follows a measurement", idx)
			}
			if err := applyInstruction(st, ins); err != nil {
				return nil, fmt.Errorf("sim: instruction %d: %w", idx, err)
			}
			if ins.Op != circuit.OpGate {
				continue
			}
			p := noise.Prob1Q
			if len(ins.Qubits) > 1 {
				p = noise.Prob2Q
			}
			if p == 0 {
				continue
			}
			for _, q := range ins.Qubits {
				if r.Float64() < p {
					m, err := gates.Unitary1(paulis[r.Intn(3)], nil)
					if err != nil {
						return nil, err
					}
					if err := st.Apply1(m, q); err != nil {
						return nil, err
					}
				}
			}
		}
		if len(mm) == 0 {
			continue
		}
		k := sampleIndex(st, r)
		var reg uint64
		for _, q := range qubits {
			bit := k >> uint(q) & 1
			if noise.ReadoutFlip > 0 && r.Float64() < noise.ReadoutFlip {
				bit ^= 1
			}
			if bit == 1 {
				reg |= 1 << uint(mm[q])
			}
		}
		res.Counts[reg]++
	}
	return res, nil
}

// sampleIndex draws one basis index from the Born distribution.
func sampleIndex(st *State, r *rng.Rand) uint64 {
	u := r.Float64()
	acc := 0.0
	last := uint64(st.Dim() - 1)
	for k := 0; k < st.Dim(); k++ {
		acc += st.Probability(uint64(k))
		if u < acc {
			return uint64(k)
		}
	}
	return last
}
