package backend

import (
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/algolib"
	"repro/internal/bundle"
	"repro/internal/ctxdesc"
	"repro/internal/graph"
	"repro/internal/ising"
	"repro/internal/qdt"
	"repro/internal/qop"
	"repro/internal/result"
	"repro/internal/sim"
)

// bestQAOAAngles grid-searches p=1 (γ, β) for the 4-cycle by exact
// expectation, mirroring what a variational outer loop would do.
func bestQAOAAngles(t *testing.T) (float64, float64, float64) {
	t.Helper()
	reg := qdt.NewIsingVars("ising_vars", "s", 4)
	g := graph.Cycle(4)
	bestCut, bestG, bestB := -1.0, 0.0, 0.0
	for gi := 1; gi <= 12; gi++ {
		for bi := 1; bi <= 12; bi++ {
			gamma := float64(gi) * 0.13
			beta := float64(bi) * 0.13
			seq, err := algolib.BuildQAOA(reg, g, []float64{gamma}, []float64{beta})
			if err != nil {
				t.Fatal(err)
			}
			low, err := algolib.Lower(seq, algolib.Registers{"ising_vars": reg})
			if err != nil {
				t.Fatal(err)
			}
			st, err := sim.Evolve(low.Circuit)
			if err != nil {
				t.Fatal(err)
			}
			cut := st.ExpectationDiagonal(func(k uint64) float64 { return g.CutValueBits(k) })
			if cut > bestCut {
				bestCut, bestG, bestB = cut, gamma, beta
			}
		}
	}
	return bestG, bestB, bestCut
}

func gateMaxCutBundle(t *testing.T, gamma, beta float64, ctx *ctxdesc.Context) *bundle.Bundle {
	t.Helper()
	reg := qdt.NewIsingVars("ising_vars", "s", 4)
	seq, err := algolib.BuildQAOA(reg, graph.Cycle(4), []float64{gamma}, []float64{beta})
	if err != nil {
		t.Fatal(err)
	}
	b, err := bundle.New([]*qdt.DataType{reg}, seq, ctx)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestGateBackendMaxCutQAOA(t *testing.T) {
	// E1/E3: the paper's gate path. QAOA p=1 at grid-optimal angles on
	// the Listing-4-style context (ring coupling map, 4096 samples,
	// seeded). Expected cut ≈ 3 and both optimal strings observed.
	gamma, beta, exact := bestQAOAAngles(t)
	if exact < 2.9 {
		t.Fatalf("grid-optimal exact expected cut %v < 2.9", exact)
	}
	ctx := ctxdesc.NewGate("gate.aer_simulator", 4096, 42)
	ctx.Exec.Target = &ctxdesc.Target{
		BasisGates:  []string{"sx", "rz", "cx"},
		CouplingMap: [][2]int{{0, 1}, {1, 2}, {2, 3}, {3, 0}},
	}
	ctx.Exec.Options = map[string]any{"optimization_level": 2}
	b := gateMaxCutBundle(t, gamma, beta, ctx)

	be, err := Get("gate.aer_simulator")
	if err != nil {
		t.Fatal(err)
	}
	res, err := be.Execute(b)
	if err != nil {
		t.Fatal(err)
	}
	g := graph.Cycle(4)
	// Expected cut from sampled counts.
	cut := 0.0
	total := 0
	seen := map[string]int{}
	for _, e := range res.Entries {
		cut += g.CutValueBits(e.Index) * float64(e.Count)
		total += e.Count
		seen[e.Bitstring] = e.Count
	}
	cut /= float64(total)
	if cut < 2.8 || cut > 3.4 {
		t.Errorf("sampled expected cut = %v, want within the paper's ≈3.0–3.2 band (±sampling)", cut)
	}
	if seen["1010"] == 0 || seen["0101"] == 0 {
		t.Errorf("optimal strings not both observed: %v", seen)
	}
	if _, ok := res.Meta["transpile"]; !ok {
		t.Error("transpile stats missing from meta")
	}
}

func TestGateBackendDeterministicSeed(t *testing.T) {
	gamma, beta := 0.65, 0.39
	ctx := ctxdesc.NewGate("gate.statevector", 512, 7)
	a, err := (&Gate{engine: "gate.statevector"}).Execute(gateMaxCutBundle(t, gamma, beta, ctx))
	if err != nil {
		t.Fatal(err)
	}
	b, err := (&Gate{engine: "gate.statevector"}).Execute(gateMaxCutBundle(t, gamma, beta, ctx))
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Entries) != len(b.Entries) {
		t.Fatal("same seed produced different outcome sets")
	}
	for i := range a.Entries {
		if a.Entries[i].Index != b.Entries[i].Index || a.Entries[i].Count != b.Entries[i].Count {
			t.Fatalf("same seed, entry %d differs", i)
		}
	}
}

func annealMaxCutBundle(t *testing.T, ctx *ctxdesc.Context) *bundle.Bundle {
	t.Helper()
	reg := qdt.NewIsingVars("ising_vars", "s", 4)
	m := ising.FromMaxCut(graph.Cycle(4))
	op, err := algolib.NewIsingProblem(reg, m)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bundle.New([]*qdt.DataType{reg}, qop.Sequence{op}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestAnnealBackendMaxCut(t *testing.T) {
	// E2/E3: the paper's anneal path with num_reads = 1000. Both optimal
	// assignments dominate; energies are attached.
	ctx := ctxdesc.NewAnneal("anneal.neal", 1000, 42)
	be, err := Get("anneal.neal")
	if err != nil {
		t.Fatal(err)
	}
	res, err := be.Execute(annealMaxCutBundle(t, ctx))
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	for _, e := range res.Entries {
		counts[e.Bitstring] += e.Count
		if !e.HasEnergy {
			t.Fatal("anneal entry missing energy")
		}
	}
	optimal := counts["1010"] + counts["0101"]
	if frac := float64(optimal) / 1000; frac < 0.9 {
		t.Errorf("optimal-cut fraction = %v, want > 0.9", frac)
	}
	top, err := res.Top()
	if err != nil {
		t.Fatal(err)
	}
	if top.Energy != -4 {
		t.Errorf("top energy = %v, want -4", top.Energy)
	}
}

func TestAnnealBackendWithEmbedding(t *testing.T) {
	ctx := ctxdesc.NewAnneal("anneal.sa", 300, 9)
	ctx.Anneal.Embed = true
	ctx.Anneal.UnitCells = 1
	ctx.Anneal.Sweeps = 500
	be, _ := Get("anneal.sa")
	res, err := be.Execute(annealMaxCutBundle(t, ctx))
	if err != nil {
		t.Fatal(err)
	}
	info, ok := res.Meta["embedding"].(EmbeddingInfo)
	if !ok {
		t.Fatal("embedding meta missing")
	}
	if info.PhysicalQubits < 4 || info.Topology != "chimera" {
		t.Errorf("embedding info = %+v", info)
	}
	counts := map[string]int{}
	for _, e := range res.Entries {
		counts[e.Bitstring] += e.Count
	}
	if frac := float64(counts["1010"]+counts["0101"]) / 300; frac < 0.8 {
		t.Errorf("embedded optimal fraction = %v", frac)
	}
}

func TestAnnealBackendRejectsGateOps(t *testing.T) {
	reg := qdt.NewIsingVars("ising_vars", "s", 4)
	seq, err := algolib.BuildQAOA(reg, graph.Cycle(4), []float64{0.5}, []float64{0.3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := bundle.New([]*qdt.DataType{reg}, seq, ctxdesc.NewAnneal("anneal.sa", 10, 1))
	if err != nil {
		t.Fatal(err)
	}
	be, _ := Get("anneal.sa")
	if _, err := be.Execute(b); err == nil {
		t.Error("anneal backend accepted a QAOA gate stack")
	}
}

func TestPulseBackend(t *testing.T) {
	gamma, beta := 0.5, 0.3
	ctx := ctxdesc.New()
	ctx.Exec = &ctxdesc.Exec{Engine: "pulse.model", Seed: 1}
	b := gateMaxCutBundle(t, gamma, beta, ctx)
	be, err := Get("pulse.model")
	if err != nil {
		t.Fatal(err)
	}
	res, err := be.Execute(b)
	if err != nil {
		t.Fatal(err)
	}
	info, ok := res.Meta["pulse"].(PulseInfo)
	if !ok {
		t.Fatal("pulse meta missing")
	}
	if info.TotalDurationNS <= 0 {
		t.Errorf("pulse duration = %v", info.TotalDurationNS)
	}
	if len(res.Entries) != 0 {
		t.Error("pulse engine produced counts")
	}
}

func TestGateBackendWithQECContext(t *testing.T) {
	gamma, beta := 0.5, 0.3
	ctx := ctxdesc.NewGate("gate.statevector", 256, 3)
	ctx.QEC = &ctxdesc.QEC{CodeFamily: "surface", Distance: 7, Allocator: "auto", PhysErrorRate: 1e-3}
	res, err := (&Gate{engine: "gate.statevector"}).Execute(gateMaxCutBundle(t, gamma, beta, ctx))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Meta["qec"]; !ok {
		t.Error("qec overhead missing from meta")
	}
}

func TestGateBackendWithCommContext(t *testing.T) {
	gamma, beta := 0.5, 0.3
	ctx := ctxdesc.NewGate("gate.statevector", 256, 3)
	ctx.Comm = &ctxdesc.Comm{QPUs: 2, QubitsPerQPU: 2, AllowTeleport: true}
	res, err := (&Gate{engine: "gate.statevector"}).Execute(gateMaxCutBundle(t, gamma, beta, ctx))
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := res.Meta["comm"]; !ok {
		t.Error("comm plan missing from meta")
	}
	// The ring QAOA on a 2+2 split has crossing gates; teleportation must
	// not shift the sampled expected cut from the exact local value
	// (≈1.152 at these angles).
	g := graph.Cycle(4)
	reg := qdt.NewIsingVars("ising_vars", "s", 4)
	seq, err := algolib.BuildQAOA(reg, g, []float64{gamma}, []float64{beta})
	if err != nil {
		t.Fatal(err)
	}
	low, err := algolib.Lower(seq, algolib.Registers{"ising_vars": reg})
	if err != nil {
		t.Fatal(err)
	}
	st, err := sim.Evolve(low.Circuit)
	if err != nil {
		t.Fatal(err)
	}
	exact := st.ExpectationDiagonal(func(k uint64) float64 { return g.CutValueBits(k) })

	cut := 0.0
	total := 0
	for _, e := range res.Entries {
		cut += g.CutValueBits(e.Index) * float64(e.Count)
		total += e.Count
	}
	if total != 256 {
		t.Errorf("total counts %d", total)
	}
	sampled := cut / float64(total)
	if math.Abs(sampled-exact) > 0.35 { // 256-shot sampling noise band
		t.Errorf("distributed expected cut %v deviates from exact %v", sampled, exact)
	}
}

func TestRegistry(t *testing.T) {
	for _, name := range Engines() {
		be, err := Get(name)
		if err != nil || be.Name() != name {
			t.Errorf("Get(%q) = %v, %v", name, be, err)
		}
	}
	if _, err := Get("quantum.magic"); err == nil {
		t.Error("unknown engine accepted")
	}
	if len(Engines()) < 5 {
		t.Errorf("registry too small: %v", Engines())
	}
}

// stubBackend is a minimal Backend for Register tests.
type stubBackend struct{ name string }

func (s *stubBackend) Name() string { return s.name }
func (s *stubBackend) Execute(b *bundle.Bundle) (*result.Result, error) {
	return &result.Result{Engine: s.name}, nil
}

func TestRegisterAndUnregister(t *testing.T) {
	const name = "stub.register_test"
	prev := Register(name, func() Backend { return &stubBackend{name: name} })
	if prev != nil {
		t.Fatalf("fresh name %q had a previous constructor", name)
	}
	defer Unregister(name)

	be, err := Get(name)
	if err != nil || be.Name() != name {
		t.Fatalf("Get(%q) = %v, %v", name, be, err)
	}
	found := false
	for _, n := range Engines() {
		if n == name {
			found = true
		}
	}
	if !found {
		t.Fatalf("Engines() lacks %q: %v", name, Engines())
	}

	// Replacing returns the old constructor so callers can restore it.
	prev = Register(name, func() Backend { return &stubBackend{name: "replaced"} })
	if prev == nil {
		t.Fatal("replacement did not return the previous constructor")
	}
	Register(name, prev)
	if be, _ := Get(name); be.Name() != name {
		t.Fatalf("restored constructor yields %q", be.Name())
	}

	Unregister(name)
	if _, err := Get(name); err == nil {
		t.Fatal("unregistered engine still resolvable")
	}
}

// TestRegistryConcurrent exercises Get/Engines/Register from concurrent
// goroutines; run with -race.
func TestRegistryConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			name := fmt.Sprintf("stub.concurrent_%d", i)
			for j := 0; j < 100; j++ {
				Register(name, func() Backend { return &stubBackend{name: name} })
				if _, err := Get("gate.statevector"); err != nil {
					t.Error(err)
					return
				}
				Engines()
				Unregister(name)
			}
		}(i)
	}
	wg.Wait()
}

func TestExpectedCutBandE3(t *testing.T) {
	// E3 consolidated: both backends return optimal cuts 1010/0101; the
	// QAOA expected cut sits in the paper's 3.0–3.2 band at optimal
	// angles (checked exactly, no sampling noise).
	_, _, exact := bestQAOAAngles(t)
	if exact < 3.0-1e-9 || exact > 3.2+1e-9 {
		// p=1 theoretical optimum for C4 is 3.0 exactly; the paper's
		// band extends to 3.2 for its "basic settings".
		if math.Abs(exact-3.0) > 0.05 {
			t.Errorf("grid-optimal expected cut = %v, outside the paper band", exact)
		}
	}
}
