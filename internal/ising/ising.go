// Package ising implements the Ising and QUBO problem models consumed by
// the annealing backend and produced by the algorithmic libraries.
//
// The paper's anneal path (§5, Fig. 3) emits a single ISING_PROBLEM operator
// descriptor declaring the energy E(s) = Σ_i h_i s_i + Σ_{i<j} J_ij s_i s_j
// over spins s_i ∈ {−1,+1}. This package holds that model, the equivalent
// QUBO form (binary x_i ∈ {0,1}), exact conversions between the two, the
// Max-Cut ↔ Ising reduction, and exact ground-state enumeration used to
// verify sampler output.
package ising

import (
	"fmt"
	"math"
	"sort"

	"repro/internal/graph"
)

// Model is an Ising problem: linear fields h and symmetric couplings J on
// n spins. Couplings are stored sparsely keyed by (i, j) with i < j.
type Model struct {
	N int
	H []float64
	J map[[2]int]float64
	// Offset is a constant energy term, produced by QUBO→Ising conversion
	// so that energies agree exactly between the two forms.
	Offset float64
}

// NewModel returns an all-zero Ising model on n spins.
func NewModel(n int) *Model {
	return &Model{N: n, H: make([]float64, n), J: map[[2]int]float64{}}
}

// SetJ sets the coupling between spins i and j (order-insensitive).
// It panics on out-of-range or equal indices; couplings are intent
// artifacts constructed by library code, so misuse is a programming error.
func (m *Model) SetJ(i, j int, v float64) {
	if i == j {
		panic("ising: diagonal coupling")
	}
	if i < 0 || j < 0 || i >= m.N || j >= m.N {
		panic(fmt.Sprintf("ising: coupling (%d,%d) out of range [0,%d)", i, j, m.N))
	}
	if i > j {
		i, j = j, i
	}
	if v == 0 {
		delete(m.J, [2]int{i, j})
		return
	}
	m.J[[2]int{i, j}] = v
}

// GetJ returns the coupling between spins i and j.
func (m *Model) GetJ(i, j int) float64 {
	if i > j {
		i, j = j, i
	}
	return m.J[[2]int{i, j}]
}

// Couplings returns the nonzero couplings in deterministic (i, j) order.
func (m *Model) Couplings() [][2]int {
	keys := make([][2]int, 0, len(m.J))
	for k := range m.J {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(a, b int) bool {
		if keys[a][0] != keys[b][0] {
			return keys[a][0] < keys[b][0]
		}
		return keys[a][1] < keys[b][1]
	})
	return keys
}

// Energy evaluates E(s) for spins s_i ∈ {−1,+1}. It panics if len(s) != N
// or any entry is not ±1.
func (m *Model) Energy(s []int8) float64 {
	if len(s) != m.N {
		panic(fmt.Sprintf("ising: spin vector length %d != %d", len(s), m.N))
	}
	e := m.Offset
	for i, h := range m.H {
		if s[i] != 1 && s[i] != -1 {
			panic(fmt.Sprintf("ising: spin %d has value %d, want ±1", i, s[i]))
		}
		e += h * float64(s[i])
	}
	for k, j := range m.J {
		e += j * float64(s[k[0]]) * float64(s[k[1]])
	}
	return e
}

// EnergyBits evaluates E at the spin configuration encoded by mask where
// bit i set means s_i = +1 (matching AS_BOOL decoding: 1 ↦ +1, 0 ↦ −1).
func (m *Model) EnergyBits(mask uint64) float64 {
	s := SpinsFromBits(mask, m.N)
	return m.Energy(s)
}

// SpinsFromBits expands a bitmask into a ±1 spin vector (bit set → +1).
func SpinsFromBits(mask uint64, n int) []int8 {
	s := make([]int8, n)
	for i := 0; i < n; i++ {
		if (mask>>uint(i))&1 == 1 {
			s[i] = 1
		} else {
			s[i] = -1
		}
	}
	return s
}

// BitsFromSpins is the inverse of SpinsFromBits.
func BitsFromSpins(s []int8) uint64 {
	var mask uint64
	for i, v := range s {
		if v == 1 {
			mask |= 1 << uint(i)
		}
	}
	return mask
}

// GroundStates enumerates all 2^n configurations and returns the minimum
// energy together with every bitmask attaining it. Limited to n <= 30.
type GroundStates struct {
	Energy float64
	Masks  []uint64
}

// BruteForce returns the exact ground states of the model.
func (m *Model) BruteForce() GroundStates {
	if m.N > 30 {
		panic("ising: brute force limited to 30 spins")
	}
	best := math.Inf(1)
	var masks []uint64
	total := uint64(1) << uint(m.N)
	for mask := uint64(0); mask < total; mask++ {
		e := m.EnergyBits(mask)
		switch {
		case e < best-1e-12:
			best = e
			masks = masks[:0]
			masks = append(masks, mask)
		case math.Abs(e-best) <= 1e-12:
			masks = append(masks, mask)
		}
	}
	return GroundStates{Energy: best, Masks: masks}
}

// QUBO is a quadratic unconstrained binary optimization problem:
// E(x) = Σ_i Q_ii x_i + Σ_{i<j} Q_ij x_i x_j + Offset, x_i ∈ {0,1}.
type QUBO struct {
	N      int
	Q      map[[2]int]float64 // keyed (i, j) with i <= j; i==j is linear
	Offset float64
}

// NewQUBO returns an empty QUBO on n variables.
func NewQUBO(n int) *QUBO {
	return &QUBO{N: n, Q: map[[2]int]float64{}}
}

// Set sets coefficient Q_ij (order-insensitive; i == j sets the linear
// term).
func (q *QUBO) Set(i, j int, v float64) {
	if i < 0 || j < 0 || i >= q.N || j >= q.N {
		panic(fmt.Sprintf("ising: QUBO index (%d,%d) out of range [0,%d)", i, j, q.N))
	}
	if i > j {
		i, j = j, i
	}
	if v == 0 {
		delete(q.Q, [2]int{i, j})
		return
	}
	q.Q[[2]int{i, j}] = v
}

// Get returns coefficient Q_ij.
func (q *QUBO) Get(i, j int) float64 {
	if i > j {
		i, j = j, i
	}
	return q.Q[[2]int{i, j}]
}

// Energy evaluates E(x) for binary x.
func (q *QUBO) Energy(x []uint8) float64 {
	if len(x) != q.N {
		panic(fmt.Sprintf("ising: binary vector length %d != %d", len(x), q.N))
	}
	e := q.Offset
	for k, v := range q.Q {
		i, j := k[0], k[1]
		if x[i] > 1 || x[j] > 1 {
			panic("ising: QUBO variable not in {0,1}")
		}
		if i == j {
			e += v * float64(x[i])
		} else {
			e += v * float64(x[i]) * float64(x[j])
		}
	}
	return e
}

// EnergyBits evaluates E at the configuration encoded by mask
// (bit i set → x_i = 1).
func (q *QUBO) EnergyBits(mask uint64) float64 {
	x := make([]uint8, q.N)
	for i := 0; i < q.N; i++ {
		x[i] = uint8((mask >> uint(i)) & 1)
	}
	return q.Energy(x)
}

// ToIsing converts the QUBO exactly into an Ising model under the standard
// substitution x_i = (1 + s_i)/2, preserving energies via the Offset term:
// QUBO.EnergyBits(m) == Ising.EnergyBits(m) for every mask m.
func (q *QUBO) ToIsing() *Model {
	m := NewModel(q.N)
	m.Offset = q.Offset
	for k, v := range q.Q {
		i, j := k[0], k[1]
		if i == j {
			// v·x_i = v/2 + (v/2)·s_i
			m.H[i] += v / 2
			m.Offset += v / 2
		} else {
			// v·x_i·x_j = v/4·(1 + s_i + s_j + s_i s_j)
			m.SetJ(i, j, m.GetJ(i, j)+v/4)
			m.H[i] += v / 4
			m.H[j] += v / 4
			m.Offset += v / 4
		}
	}
	return m
}

// ToQUBO converts the Ising model exactly into a QUBO via s_i = 2x_i − 1.
func (m *Model) ToQUBO() *QUBO {
	q := NewQUBO(m.N)
	q.Offset = m.Offset
	for i, h := range m.H {
		if h != 0 {
			// h·s_i = 2h·x_i − h
			q.Set(i, i, q.Get(i, i)+2*h)
			q.Offset -= h
		}
	}
	for k, j := range m.J {
		a, b := k[0], k[1]
		// j·s_a·s_b = 4j·x_a·x_b − 2j·x_a − 2j·x_b + j
		q.Set(a, b, q.Get(a, b)+4*j)
		q.Set(a, a, q.Get(a, a)-2*j)
		q.Set(b, b, q.Get(b, b)-2*j)
		q.Offset += j
	}
	return q
}

// FromMaxCut builds the standard Max-Cut Ising model for g: h = 0 and
// J_ij = w_ij on every edge. Minimizing E(s) = Σ w_ij s_i s_j makes
// anti-aligned spins (cut edges) energetically favourable; the cut value of
// a configuration is recovered by CutFromEnergy.
//
// This is exactly the paper's §5 anneal-path formulation: "h is the zero
// vector and J is a symmetric 4×4 matrix with unit couplings on edges
// (0,1), (1,2), (2,3), (3,0)".
func FromMaxCut(g *graph.Graph) *Model {
	m := NewModel(g.N)
	for _, e := range g.Edges {
		m.SetJ(e.U, e.V, m.GetJ(e.U, e.V)+e.Weight)
	}
	return m
}

// CutFromEnergy converts an Ising energy of a FromMaxCut model back to the
// cut value: E = W − 2·cut where W is the graph's total weight, so
// cut = (W − E)/2.
func CutFromEnergy(g *graph.Graph, energy float64) float64 {
	return (g.TotalWeight() - energy) / 2
}

// MaxAbsCoupling returns the largest |J| (used to choose embedding chain
// strengths).
func (m *Model) MaxAbsCoupling() float64 {
	max := 0.0
	for _, v := range m.J {
		if a := math.Abs(v); a > max {
			max = a
		}
	}
	for _, h := range m.H {
		if a := math.Abs(h); a > max {
			max = a
		}
	}
	return max
}

// AdjacencyList returns, for each spin, its coupled partners in sorted
// order. Samplers use this for O(degree) energy-delta updates.
func (m *Model) AdjacencyList() [][]int {
	adj := make([][]int, m.N)
	for k := range m.J {
		adj[k[0]] = append(adj[k[0]], k[1])
		adj[k[1]] = append(adj[k[1]], k[0])
	}
	for i := range adj {
		sort.Ints(adj[i])
	}
	return adj
}

// LocalField returns the effective field on spin i given configuration s:
// h_i + Σ_j J_ij s_j. Flipping spin i changes the energy by −2·s_i·field.
func (m *Model) LocalField(i int, s []int8) float64 {
	f := m.H[i]
	for k, j := range m.J {
		switch i {
		case k[0]:
			f += j * float64(s[k[1]])
		case k[1]:
			f += j * float64(s[k[0]])
		}
	}
	return f
}
