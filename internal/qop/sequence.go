package qop

import (
	"fmt"
	"strings"
)

// Sequence is an ordered list of operator descriptors — "composition is
// just a list of descriptors with utilities to check quantum data type
// compatibility and enforce no hidden measurement/reset" (paper §4.4).
type Sequence []*Operator

// QDTWidths maps register IDs to widths; Sequence validation needs only
// widths and identities, not full descriptors, to stay decoupled from qdt.
type QDTWidths map[string]int

// ValidateOptions control sequence-level policy checks.
type ValidateOptions struct {
	// AllowMidCircuit permits MEASUREMENT operators before the final
	// position. The paper requires mid-circuit measurement to be an
	// explicit, opted-into capability ("late parameter binding and
	// adaptive control … while forbidding implicit measurements", §3).
	AllowMidCircuit bool
}

// Validate checks every operator individually, that referenced registers
// exist, that consecutive operators on the same register chain domain to
// codomain, and the no-hidden-measurement rule.
func (s Sequence) Validate(widths QDTWidths, opts ValidateOptions) error {
	var probs []string
	lastCodomain := map[string]string{} // register id -> last codomain id (for rename chains)
	_ = lastCodomain
	for i, op := range s {
		if op == nil {
			probs = append(probs, fmt.Sprintf("op %d is nil", i))
			continue
		}
		if err := op.Validate(); err != nil {
			probs = append(probs, fmt.Sprintf("op %d: %v", i, err))
			continue
		}
		if _, ok := widths[op.DomainQDT]; !ok {
			probs = append(probs, fmt.Sprintf("op %d (%s): domain_qdt %q is not a declared register", i, op.Name, op.DomainQDT))
		}
		if _, ok := widths[op.CodomainQDT]; !ok {
			probs = append(probs, fmt.Sprintf("op %d (%s): codomain_qdt %q is not a declared register", i, op.Name, op.CodomainQDT))
		}
		if op.RepKind == Measurement && i != len(s)-1 && !opts.AllowMidCircuit {
			probs = append(probs, fmt.Sprintf("op %d (%s): hidden mid-circuit MEASUREMENT (set AllowMidCircuit to permit)", i, op.Name))
		}
		if op.Result != nil {
			w, ok := widths[op.CodomainQDT]
			if ok {
				if err := op.Result.Validate(op.CodomainQDT, w); err != nil {
					probs = append(probs, fmt.Sprintf("op %d (%s): %v", i, op.Name, err))
				}
			}
		}
	}
	if len(probs) > 0 {
		return fmt.Errorf("qop sequence: %s", strings.Join(probs, "; "))
	}
	return nil
}

// TotalCostHint folds the operators' cost hints sequentially; operators
// without hints contribute nothing. The bool reports whether every
// operator carried a hint (a scheduler may treat partial totals as lower
// bounds).
func (s Sequence) TotalCostHint() (CostHint, bool) {
	var total CostHint
	complete := true
	for _, op := range s {
		if op.CostHint == nil {
			complete = false
			continue
		}
		total = total.Add(*op.CostHint)
	}
	return total, complete
}

// Registers returns the distinct register IDs referenced by the sequence,
// in first-use order.
func (s Sequence) Registers() []string {
	seen := map[string]bool{}
	var out []string
	for _, op := range s {
		for _, id := range []string{op.DomainQDT, op.CodomainQDT} {
			if id != "" && !seen[id] {
				seen[id] = true
				out = append(out, id)
			}
		}
	}
	return out
}

// FinalMeasurement returns the trailing MEASUREMENT operator, or nil if the
// sequence does not end in one.
func (s Sequence) FinalMeasurement() *Operator {
	if len(s) == 0 {
		return nil
	}
	last := s[len(s)-1]
	if last != nil && last.RepKind == Measurement {
		return last
	}
	return nil
}

// Invert returns the inverse sequence: each operator inverted, in reverse
// order. A trailing MEASUREMENT (not invertible) is rejected.
func (s Sequence) Invert() (Sequence, error) {
	out := make(Sequence, 0, len(s))
	for i := len(s) - 1; i >= 0; i-- {
		inv, err := s[i].Invert()
		if err != nil {
			return nil, fmt.Errorf("qop: inverting op %d: %w", i, err)
		}
		out = append(out, inv)
	}
	return out, nil
}

// Concat concatenates sequences, cloning every operator so callers can
// mutate the result without aliasing inputs.
func Concat(seqs ...Sequence) Sequence {
	var out Sequence
	for _, s := range seqs {
		for _, op := range s {
			out = append(out, op.Clone())
		}
	}
	return out
}
