package sim

import (
	"math"
	"math/rand"
	"runtime"
	"testing"

	"repro/internal/circuit"
	"repro/internal/gates"
)

// symbolicQAOA builds a depth-p QAOA circuit over a weighted ring with
// symbolic layer angles: parameter 2l is layer l's gamma, 2l+1 its
// beta. It mirrors what algolib's parametric lowering emits — CX /
// RZ(2wγ) / CX per edge, RX(2β) per qubit — exercising the diag-fold
// and 1Q-fold recording paths.
func symbolicQAOA(n, p int) *circuit.Circuit {
	c := circuit.New(n, n)
	for q := 0; q < n; q++ {
		c.H(q)
	}
	for layer := 0; layer < p; layer++ {
		gi, bi := 2*layer, 2*layer+1
		for q := 0; q < n; q++ {
			u, v := q, (q+1)%n
			w := 0.5 + 0.25*float64(q%3)
			c.CX(u, v)
			if err := c.GateRefs(gates.RZ, []int{v}, []float64{0}, []circuit.ParamRef{{Index: gi, Scale: 2 * w}}); err != nil {
				panic(err)
			}
			c.CX(u, v)
		}
		for q := 0; q < n; q++ {
			if err := c.GateRefs(gates.RX, []int{q}, []float64{0}, []circuit.ParamRef{{Index: bi, Scale: 2}}); err != nil {
				panic(err)
			}
		}
	}
	for q := 0; q < n; q++ {
		c.Measure(q, q)
	}
	return c
}

// randomSymbolicCircuit splices symbolic single-qubit rotations into a
// random mixed circuit so the parametric recording hits every fusion
// path: same-qubit 2×2 folds, folds into dense pair kernels, the
// promote path, the fuse2Q accumulation, and diagonal row scaling.
func randomSymbolicCircuit(r *rand.Rand, n, depth, nParams int) *circuit.Circuit {
	base := randomCircuit(r, n, depth)
	out := circuit.New(n, n)
	rots := []gates.Name{gates.RX, gates.RY, gates.RZ, gates.P}
	insert := func(idx int) {
		name := rots[r.Intn(len(rots))]
		scale := 0.1 + 2*r.Float64()
		if err := out.GateRefs(name, []int{r.Intn(n)}, []float64{0}, []circuit.ParamRef{{Index: idx, Scale: scale}}); err != nil {
			panic(err)
		}
	}
	instrs := base.Instrs
	// A leading Init must stay first: the state must still be |0…0⟩.
	if len(instrs) > 0 && instrs[0].Op == circuit.OpInit {
		if err := out.Append(instrs[0]); err != nil {
			panic(err)
		}
		instrs = instrs[1:]
	}
	// Guarantee every parameter index appears at least once.
	for idx := 0; idx < nParams; idx++ {
		insert(idx)
	}
	for _, ins := range instrs {
		if err := out.Append(ins); err != nil {
			panic(err)
		}
		if r.Intn(3) == 0 {
			insert(r.Intn(nParams))
		}
	}
	for q := 0; q < n; q++ {
		out.Measure(q, q)
	}
	return out
}

// bindParity asserts pp.Bind(v) executed through RunPlan yields counts
// bit-identical to the concrete path — Compile of c.BindValues(v) — at
// the given shard count, plus exact amplitude equality.
func bindParity(t *testing.T, c *circuit.Circuit, pp *ParamPlan, v []float64, shards int) {
	t.Helper()
	bound, err := c.BindValues(v)
	if err != nil {
		t.Fatalf("BindValues: %v", err)
	}
	opts := Options{Shots: 512, Seed: 42, Shards: shards, KeepState: true}
	want, err := Run(bound, opts)
	if err != nil {
		t.Fatalf("concrete Run: %v", err)
	}
	pl, err := pp.Bind(v)
	if err != nil {
		t.Fatalf("Bind: %v", err)
	}
	got, err := RunPlan(c, pl, opts)
	if err != nil {
		t.Fatalf("RunPlan: %v", err)
	}
	if len(got.Counts) != len(want.Counts) {
		t.Fatalf("shards=%d: %d distinct outcomes, want %d", shards, len(got.Counts), len(want.Counts))
	}
	for k, n := range want.Counts {
		if got.Counts[k] != n {
			t.Fatalf("shards=%d: counts[%d]=%d, want %d", shards, k, got.Counts[k], n)
		}
	}
	for i := range want.Final.re {
		if got.Final.re[i] != want.Final.re[i] || got.Final.im[i] != want.Final.im[i] {
			t.Fatalf("shards=%d: amplitude %d differs: (%v,%v) vs (%v,%v)",
				shards, i, got.Final.re[i], got.Final.im[i], want.Final.re[i], want.Final.im[i])
		}
	}
}

func TestParamPlanQAOAParity(t *testing.T) {
	c := symbolicQAOA(6, 2)
	pp, err := CompileParametric(c)
	if err != nil {
		t.Fatal(err)
	}
	if pp.NumParams() != 4 {
		t.Fatalf("NumParams = %d, want 4", pp.NumParams())
	}
	points := [][]float64{
		{0.3, 0.7, 1.1, 0.2},
		{2.5, -0.4, 0.9, 3.0},
		{0, 0, 0, 0}, // gamma=beta=0: RX(0) flips the leaf diag class → fallback
		{math.Pi, math.Pi / 2, -math.Pi, 0.25},
	}
	for _, shards := range []int{1, 4, runtime.GOMAXPROCS(0)} {
		for _, v := range points {
			bindParity(t, c, pp, v, shards)
		}
	}
	binds, fallbacks := pp.Binds()
	if fallbacks == 0 {
		t.Fatalf("degenerate point took the fast path (binds=%d fallbacks=0)", binds)
	}
	if fallbacks >= binds {
		t.Fatalf("every bind fell back (binds=%d fallbacks=%d)", binds, fallbacks)
	}
}

func TestParamPlanRandomParity(t *testing.T) {
	r := rand.New(rand.NewSource(907))
	for trial := 0; trial < 20; trial++ {
		n := 2 + r.Intn(4)
		nParams := 1 + r.Intn(3)
		c := randomSymbolicCircuit(r, n, 8+r.Intn(20), nParams)
		pp, err := CompileParametric(c)
		if err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
		for pt := 0; pt < 4; pt++ {
			v := make([]float64, pp.NumParams())
			for i := range v {
				v[i] = r.Float64()*4*math.Pi - 2*math.Pi
			}
			if pt == 3 {
				v[r.Intn(len(v))] = 0 // chance of a degenerate classification
			}
			bindParity(t, c, pp, v, 1+r.Intn(4))
		}
	}
}

// TestParamPlanBindInvariance pins the compile-once contract: fast-path
// binds share the template's structure — kernel count, kinds, supports,
// order, and all stats except the per-point Monomial2Q — and never
// recompile.
func TestParamPlanBindInvariance(t *testing.T) {
	c := symbolicQAOA(5, 2)
	pp, err := CompileParametric(c)
	if err != nil {
		t.Fatal(err)
	}
	before := CompileCount()
	var first *Plan
	for _, v := range [][]float64{{0.3, 0.7, 1.1, 0.2}, {1.9, 2.2, -0.8, 0.45}, {0.05, 3.1, 2.7, -1.3}} {
		pl, err := pp.Bind(v)
		if err != nil {
			t.Fatal(err)
		}
		if first == nil {
			first = pl
			continue
		}
		if len(pl.kernels) != len(first.kernels) {
			t.Fatalf("kernel count varies across binds: %d vs %d", len(pl.kernels), len(first.kernels))
		}
		for i := range pl.kernels {
			a, b := &pl.kernels[i], &first.kernels[i]
			if a.kind != b.kind || a.support != b.support || a.q != b.q || a.q2 != b.q2 {
				t.Fatalf("kernel %d structure varies across binds", i)
			}
		}
		sa, sb := pl.stats, first.stats
		sa.Monomial2Q, sb.Monomial2Q = 0, 0
		if sa != sb {
			t.Fatalf("structural stats vary across binds: %+v vs %+v", sa, sb)
		}
	}
	if d := CompileCount() - before; d != 0 {
		t.Fatalf("fast-path binds recompiled %d times", d)
	}
	// Per-point Monomial2Q must match what a concrete compile reports.
	v := []float64{0.3, 0.7, 1.1, 0.2}
	pl, err := pp.Bind(v)
	if err != nil {
		t.Fatal(err)
	}
	bound, err := c.BindValues(v)
	if err != nil {
		t.Fatal(err)
	}
	ref, err := Compile(bound)
	if err != nil {
		t.Fatal(err)
	}
	if pl.stats != ref.stats {
		t.Fatalf("bound stats %+v, concrete compile stats %+v", pl.stats, ref.stats)
	}
}

func TestParamPlanErrors(t *testing.T) {
	if _, err := CompileParametric(circuit.New(2, 2)); err == nil {
		t.Fatal("CompileParametric accepted a concrete circuit")
	}
	c := symbolicQAOA(4, 1)
	if _, err := Compile(c); err == nil {
		t.Fatal("Compile accepted a symbolic circuit")
	}
	pp, err := CompileParametric(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pp.Bind([]float64{1}); err == nil {
		t.Fatal("Bind accepted a short vector")
	}
}

// BenchmarkSweepBind20 compares deriving a 20-qubit QAOA point via
// ParamPlan.Bind against a full concrete recompile — the per-point cost
// a sweep saves.
func BenchmarkSweepBind20(b *testing.B) {
	c := symbolicQAOA(20, 2)
	pp, err := CompileParametric(c)
	if err != nil {
		b.Fatal(err)
	}
	v := []float64{0.3, 0.7, 1.1, 0.2}
	b.Run("bind", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := pp.Bind(v); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("recompile", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			bound, err := c.BindValues(v)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := Compile(bound); err != nil {
				b.Fatal(err)
			}
		}
	})
}
