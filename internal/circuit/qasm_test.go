package circuit

import (
	"strings"
	"testing"
)

func TestToQASMBell(t *testing.T) {
	c := New(2, 2)
	c.H(0).CX(0, 1).MeasureAll()
	qasm, err := c.ToQASM()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"OPENQASM 2.0;",
		`include "qelib1.inc";`,
		"qreg q[2];",
		"creg c[2];",
		"h q[0];",
		"cx q[0],q[1];",
		"measure q[0] -> c[0];",
		"measure q[1] -> c[1];",
	} {
		if !strings.Contains(qasm, want) {
			t.Errorf("QASM missing %q:\n%s", want, qasm)
		}
	}
}

func TestToQASMParamsAndAliases(t *testing.T) {
	c := New(2, 0)
	c.RZ(0.5, 0)
	c.Phase(0.25, 1)
	c.CPhase(1.5, 0, 1)
	c.Barrier()
	qasm, err := c.ToQASM()
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		"rz(0.5) q[0];",
		"u1(0.25) q[1];",
		"cu1(1.5) q[0],q[1];",
		"barrier q;",
	} {
		if !strings.Contains(qasm, want) {
			t.Errorf("QASM missing %q:\n%s", want, qasm)
		}
	}
}

func TestToQASMNoClbits(t *testing.T) {
	c := New(1, 0)
	c.X(0)
	qasm, err := c.ToQASM()
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(qasm, "creg") {
		t.Error("creg emitted for classical-free circuit")
	}
}

func TestToQASMRejectsNativeOps(t *testing.T) {
	c := New(2, 0)
	if err := c.Permute([]int{0, 1}, []uint64{0, 1, 2, 3}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.ToQASM(); err == nil {
		t.Error("permute exported to QASM")
	}
	c2 := New(1, 0)
	if err := c2.Diagonal([]int{0}, []complex128{1, -1}); err != nil {
		t.Fatal(err)
	}
	if _, err := c2.ToQASM(); err == nil {
		t.Error("diagonal exported to QASM")
	}
}

func TestToQASMPartialBarrier(t *testing.T) {
	c := New(3, 0)
	c.Barrier(0, 2)
	qasm, err := c.ToQASM()
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(qasm, "barrier q[0],q[2];") {
		t.Errorf("partial barrier wrong:\n%s", qasm)
	}
}
