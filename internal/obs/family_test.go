package obs

import (
	"fmt"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestCounterFamilyChildrenAndExposition(t *testing.T) {
	r := NewRegistry()
	f := r.CounterFamily("fam_ops_total", "Ops by kind.", "kind", []string{"alpha", "beta", "gamma"})
	f.With("alpha").Add(3)
	f.At(1).Inc() // beta
	if got := f.Values(); len(got) != 3 || got[0] != "alpha" || got[2] != "gamma" {
		t.Fatalf("Values() = %v, want registration order", got)
	}
	if f.With("beta") != f.At(1) {
		t.Fatal("With and At disagree on the beta child")
	}
	fam := findFamily(t, mustParse(t, r), "fam_ops_total")
	if fam.Type != "counter" {
		t.Fatalf("type = %q, want counter", fam.Type)
	}
	if v, ok := fam.Value(Label{Name: "kind", Value: "alpha"}); !ok || v != 3 {
		t.Fatalf("alpha = %v,%v want 3,true", v, ok)
	}
	if v, ok := fam.Value(Label{Name: "kind", Value: "beta"}); !ok || v != 1 {
		t.Fatalf("beta = %v,%v want 1,true", v, ok)
	}
	if v, ok := fam.Value(Label{Name: "kind", Value: "gamma"}); !ok || v != 0 {
		t.Fatalf("gamma = %v,%v want 0,true (eager child)", v, ok)
	}
}

func TestHistogramFamilyObserve(t *testing.T) {
	r := NewRegistry()
	f := r.HistogramFamily("fam_lat_seconds", "Latency by kind.", []float64{0.001, 1}, "kind", []string{"fast", "slow"})
	f.With("fast").Observe(100 * time.Microsecond)
	f.At(1).Observe(10 * time.Millisecond) // slow
	fam := findFamily(t, mustParse(t, r), "fam_lat_seconds")
	if fam.Type != "histogram" {
		t.Fatalf("type = %q, want histogram", fam.Type)
	}
	for _, kind := range []string{"fast", "slow"} {
		if got := histCount(t, fam, kind); got != 1 {
			t.Fatalf("%s count = %v, want 1", kind, got)
		}
	}
}

// histCount digs the _count sample for one label value out of a parsed
// histogram family.
func histCount(t *testing.T, fam *Family, kind string) float64 {
	t.Helper()
	for _, s := range fam.Samples {
		if strings.HasSuffix(s.Name, "_count") && s.Label("kind") == kind {
			return s.Value
		}
	}
	t.Fatalf("no _count sample for kind=%s", kind)
	return 0
}

func TestFamilyUnknownValuePanics(t *testing.T) {
	r := NewRegistry()
	f := r.CounterFamily("fam_panic_total", "Ops.", "kind", []string{"known"})
	defer func() {
		if recover() == nil {
			t.Fatal("With on an unknown value did not panic")
		}
	}()
	f.With("unknown")
}

func TestFamilyRegistrationRejectsBadEnums(t *testing.T) {
	cases := []struct {
		name   string
		values []string
	}{
		{"empty set", nil},
		{"empty value", []string{"ok", ""}},
		{"duplicate value", []string{"dup", "dup"}},
		{"oversized enum", func() []string {
			vs := make([]string, maxFamilyValues+1)
			for i := range vs {
				vs[i] = fmt.Sprintf("v%02d", i)
			}
			return vs
		}()},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			r := NewRegistry()
			defer func() {
				if recover() == nil {
					t.Fatalf("%s was accepted", tc.name)
				}
			}()
			r.CounterFamily("fam_bad_total", "Ops.", "kind", tc.values)
		})
	}
}

// TestFamilyConcurrentRegistrationAndObservation proves (under -race)
// that racing registrations of the same family share children through
// the registry, and racing observations on those children never lose an
// increment.
func TestFamilyConcurrentRegistrationAndObservation(t *testing.T) {
	r := NewRegistry()
	values := []string{"a", "b", "c"}
	const goroutines, perG = 8, 1000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			f := r.CounterFamily("fam_race_total", "Ops.", "kind", values)
			h := r.HistogramFamily("fam_race_seconds", "Lat.", nil, "kind", values)
			for i := 0; i < perG; i++ {
				f.At(i % len(values)).Inc()
				h.With(values[(g+i)%len(values)]).Observe(time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	fams := mustParse(t, r)
	var total float64
	for _, v := range values {
		n, ok := findFamily(t, fams, "fam_race_total").Value(Label{Name: "kind", Value: v})
		if !ok {
			t.Fatalf("no sample for %s", v)
		}
		total += n
	}
	if want := float64(goroutines * perG); total != want {
		t.Fatalf("counter total = %v, want %v (lost increments under racing registration)", total, want)
	}
	var hcount float64
	for _, v := range values {
		hcount += histCount(t, findFamily(t, fams, "fam_race_seconds"), v)
	}
	if want := float64(goroutines * perG); hcount != want {
		t.Fatalf("histogram count total = %v, want %v", hcount, want)
	}
}
