package jobs

import (
	"errors"
	"fmt"
	"reflect"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"repro/internal/algolib"
	"repro/internal/backend"
	"repro/internal/bundle"
	"repro/internal/ctxdesc"
	"repro/internal/graph"
	"repro/internal/ising"
	"repro/internal/qdt"
	"repro/internal/qop"
	"repro/internal/result"
)

// gateBundle builds a small 4-qubit QAOA MaxCut bundle for a gate or
// pulse engine.
func gateBundle(t testing.TB, engine string, samples int, seed uint64) *bundle.Bundle {
	t.Helper()
	reg := qdt.NewIsingVars("ising_vars", "s", 4)
	seq, err := algolib.BuildQAOA(reg, graph.Cycle(4), []float64{0.39}, []float64{1.17})
	if err != nil {
		t.Fatal(err)
	}
	b, err := bundle.New([]*qdt.DataType{reg}, seq, ctxdesc.NewGate(engine, samples, seed))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// annealBundle builds a 4-spin Ising MaxCut bundle for an anneal (or
// injected fake) engine.
func annealBundle(t testing.TB, engine string, reads int, seed uint64) *bundle.Bundle {
	t.Helper()
	reg := qdt.NewIsingVars("ising_vars", "s", 4)
	op, err := algolib.NewIsingProblem(reg, ising.FromMaxCut(graph.Cycle(4)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := bundle.New([]*qdt.DataType{reg}, qop.Sequence{op}, ctxdesc.NewAnneal(engine, reads, seed))
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func bundleFor(t testing.TB, engine string, seed uint64) *bundle.Bundle {
	if strings.HasPrefix(engine, "anneal.") {
		return annealBundle(t, engine, 50, seed)
	}
	return gateBundle(t, engine, 256, seed)
}

// fakeBackend counts executions and returns a deterministic result
// derived from the context seed; optional block gates Execute for
// backpressure tests.
type fakeBackend struct {
	name  string
	execs *atomic.Int64
	block chan struct{}
	ran   chan struct{}
	fail  bool // Execute returns an error instead of a result
}

func (f *fakeBackend) Name() string { return f.name }

func (f *fakeBackend) Execute(b *bundle.Bundle) (*result.Result, error) {
	if f.ran != nil {
		f.ran <- struct{}{}
	}
	if f.block != nil {
		<-f.block
	}
	f.execs.Add(1)
	if f.fail {
		return nil, fmt.Errorf("%s: injected failure", f.name)
	}
	seed := uint64(0)
	if b.Context != nil && b.Context.Exec != nil {
		seed = b.Context.Exec.Seed
	}
	return &result.Result{
		Engine:  f.name,
		Samples: 100,
		Entries: []result.Entry{
			{Bitstring: "0101", Index: seed % 16, Count: 60},
			{Bitstring: "1010", Index: (seed + 5) % 16, Count: 40},
		},
	}, nil
}

// registerFake installs a fake backend under a unique name and removes it
// at test end.
func registerFake(t *testing.T, name string, f *fakeBackend) {
	t.Helper()
	f.name = name
	if f.execs == nil {
		f.execs = &atomic.Int64{}
	}
	backend.Register(name, func() backend.Backend { return f })
	t.Cleanup(func() { backend.Unregister(name) })
}

// TestConcurrentSubmitPoll is the acceptance-criterion race test: 64 jobs
// across every registered engine, submitted and polled from concurrent
// goroutines under -race.
func TestConcurrentSubmitPoll(t *testing.T) {
	pool := NewPool(Options{Workers: 8, QueueDepth: 64, CacheSize: -1})
	defer pool.Close()
	engines := backend.Engines()
	if len(engines) < 5 {
		t.Fatalf("expected ≥5 registered engines, got %v", engines)
	}

	var wg sync.WaitGroup
	errs := make(chan error, 64)
	for i := 0; i < 64; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			engine := engines[i%len(engines)]
			id, err := pool.Submit(bundleFor(t, engine, uint64(i)))
			if err != nil {
				errs <- fmt.Errorf("submit %d (%s): %w", i, engine, err)
				return
			}
			// Poll the public surface while the job is in flight.
			for {
				st, err := pool.Status(id)
				if err != nil {
					errs <- err
					return
				}
				pool.Stats()
				if st.State.Terminal() {
					break
				}
				time.Sleep(time.Millisecond)
			}
			st, err := pool.Wait(id)
			if err != nil {
				errs <- err
				return
			}
			if st.State != StateDone {
				errs <- fmt.Errorf("job %s (%s): state %s, error %q", id, engine, st.State, st.Error)
				return
			}
			if _, err := pool.Result(id); err != nil {
				errs <- err
			}
		}(i)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	s := pool.Stats()
	if s.Submitted != 64 || s.Completed != 64 || s.Failed != 0 || s.Rejected != 0 {
		t.Fatalf("stats after 64 jobs: %+v", s)
	}
	if s.TotalRun <= 0 {
		t.Fatalf("expected nonzero total run time, got %v", s.TotalRun)
	}
}

// TestCacheHitDeterminism checks that an identical resubmission is served
// from the content-addressed cache — identical counts, no re-execution —
// while a different seed misses.
func TestCacheHitDeterminism(t *testing.T) {
	fake := &fakeBackend{}
	registerFake(t, "fake.cachetest", fake)

	pool := NewPool(Options{Workers: 2, QueueDepth: 8})
	defer pool.Close()

	id1, err := pool.Submit(annealBundle(t, "fake.cachetest", 50, 7))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Wait(id1); err != nil {
		t.Fatal(err)
	}
	res1, err := pool.Result(id1)
	if err != nil {
		t.Fatal(err)
	}

	// Identical intent + context + seed → cache hit, no second execution.
	id2, err := pool.Submit(annealBundle(t, "fake.cachetest", 50, 7))
	if err != nil {
		t.Fatal(err)
	}
	st2, err := pool.Wait(id2)
	if err != nil {
		t.Fatal(err)
	}
	if !st2.CacheHit || st2.State != StateDone {
		t.Fatalf("second submission: cacheHit=%v state=%s", st2.CacheHit, st2.State)
	}
	res2, err := pool.Result(id2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(res1.Entries, res2.Entries) || res1.Engine != res2.Engine || res1.Samples != res2.Samples {
		t.Fatalf("cached result differs:\n  first  %+v\n  second %+v", res1, res2)
	}
	if got := fake.execs.Load(); got != 1 {
		t.Fatalf("backend executed %d times, want 1 (second run must come from cache)", got)
	}

	// Different seed → different content address → executes again.
	id3, err := pool.Submit(annealBundle(t, "fake.cachetest", 50, 8))
	if err != nil {
		t.Fatal(err)
	}
	st3, err := pool.Wait(id3)
	if err != nil {
		t.Fatal(err)
	}
	if st3.CacheHit {
		t.Fatal("different seed must not hit the cache")
	}
	if got := fake.execs.Load(); got != 2 {
		t.Fatalf("backend executed %d times, want 2", got)
	}

	s := pool.Stats()
	if s.CacheHits != 1 || s.Completed != 3 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestQueueFullBackpressure fills the bounded queue behind a blocked
// worker and checks Submit rejects with ErrQueueFull.
func TestQueueFullBackpressure(t *testing.T) {
	fake := &fakeBackend{block: make(chan struct{}), ran: make(chan struct{}, 4)}
	registerFake(t, "fake.backpressure", fake)

	pool := NewPool(Options{Workers: 1, QueueDepth: 1, CacheSize: -1})
	defer pool.Close()

	id1, err := pool.Submit(annealBundle(t, "fake.backpressure", 50, 1))
	if err != nil {
		t.Fatal(err)
	}
	<-fake.ran // worker has dequeued id1 and is blocked inside Execute

	id2, err := pool.Submit(annealBundle(t, "fake.backpressure", 50, 2))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := pool.Submit(annealBundle(t, "fake.backpressure", 50, 3)); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("third submit: err = %v, want ErrQueueFull", err)
	}
	if s := pool.Stats(); s.Rejected != 1 || s.Submitted != 2 {
		t.Fatalf("stats after rejection: %+v", s)
	}

	// Canceling the queued job frees its slot: the next submit is
	// accepted instead of rejected.
	if err := pool.Cancel(id2); err != nil {
		t.Fatal(err)
	}
	id4, err := pool.Submit(annealBundle(t, "fake.backpressure", 50, 4))
	if err != nil {
		t.Fatalf("submit after cancel should reuse the freed slot: %v", err)
	}

	close(fake.block)
	for _, id := range []string{id1, id4} {
		if st, err := pool.Wait(id); err != nil || st.State != StateDone {
			t.Fatalf("job %s: %v / %+v", id, err, st)
		}
	}
	if st, err := pool.Wait(id2); err != nil || st.State != StateCanceled {
		t.Fatalf("canceled job %s: %v / %+v", id2, err, st)
	}
}

// TestCancel cancels a queued job behind a blocked worker and checks the
// lifecycle and error surface.
func TestCancel(t *testing.T) {
	fake := &fakeBackend{block: make(chan struct{}), ran: make(chan struct{}, 4)}
	registerFake(t, "fake.cancel", fake)

	pool := NewPool(Options{Workers: 1, QueueDepth: 4, CacheSize: -1})
	defer pool.Close()

	id1, err := pool.Submit(annealBundle(t, "fake.cancel", 50, 1))
	if err != nil {
		t.Fatal(err)
	}
	<-fake.ran

	id2, err := pool.Submit(annealBundle(t, "fake.cancel", 50, 2))
	if err != nil {
		t.Fatal(err)
	}
	if err := pool.Cancel(id2); err != nil {
		t.Fatal(err)
	}
	st, err := pool.Status(id2)
	if err != nil || st.State != StateCanceled {
		t.Fatalf("canceled job: %v / %+v", err, st)
	}
	if _, err := pool.Result(id2); !errors.Is(err, ErrCanceled) {
		t.Fatalf("Result of canceled job: %v, want ErrCanceled", err)
	}
	if err := pool.Cancel(id1); err == nil {
		t.Fatal("canceling a running job must fail")
	}
	if err := pool.Cancel("job-99999999"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("cancel unknown: %v, want ErrNotFound", err)
	}
	if s := pool.Stats(); s.QueueLen != 0 {
		t.Fatalf("canceling the queued job must free its slot, queue len %d", s.QueueLen)
	}

	close(fake.block)
	if st, err := pool.Wait(id1); err != nil || st.State != StateDone {
		t.Fatalf("job %s: %v / %+v", id1, err, st)
	}
	if err := pool.Cancel(id1); err == nil {
		t.Fatal("canceling a done job must fail")
	}
	// The canceled job must never have executed.
	if got := fake.execs.Load(); got != 1 {
		t.Fatalf("executions = %d, want 1 (canceled job must be skipped)", got)
	}
	if s := pool.Stats(); s.Canceled != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestRealEngineCacheDeterminism runs the seeded gate engine twice and
// checks the cached replay is byte-identical to fresh execution.
func TestRealEngineCacheDeterminism(t *testing.T) {
	pool := NewPool(Options{Workers: 2, QueueDepth: 4})
	defer pool.Close()

	ids := [2]string{}
	for i := range ids {
		id, err := pool.Submit(gateBundle(t, "gate.statevector", 512, 42))
		if err != nil {
			t.Fatal(err)
		}
		if _, err := pool.Wait(id); err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	res1, err1 := pool.Result(ids[0])
	res2, err2 := pool.Result(ids[1])
	if err1 != nil || err2 != nil {
		t.Fatal(err1, err2)
	}
	if !reflect.DeepEqual(res1.Entries, res2.Entries) {
		t.Fatal("cached gate result differs from fresh execution")
	}
	if s := pool.Stats(); s.CacheHits != 1 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestFailedJob routes an unknown engine through the pool and checks the
// failure lifecycle.
func TestFailedJob(t *testing.T) {
	pool := NewPool(Options{Workers: 1, QueueDepth: 4})
	defer pool.Close()

	id, err := pool.Submit(annealBundle(t, "no.such_engine", 50, 1))
	if err != nil {
		t.Fatal(err)
	}
	st, err := pool.Wait(id)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != StateFailed || st.Error == "" {
		t.Fatalf("status: %+v", st)
	}
	if _, err := pool.Result(id); err == nil {
		t.Fatal("Result of failed job must return the execution error")
	}
	if s := pool.Stats(); s.Failed != 1 {
		t.Fatalf("stats: %+v", s)
	}
	// Failures are not cached: resubmission runs (and fails) again.
	id2, err := pool.Submit(annealBundle(t, "no.such_engine", 50, 1))
	if err != nil {
		t.Fatal(err)
	}
	if st2, _ := pool.Wait(id2); st2.CacheHit {
		t.Fatal("failed jobs must not populate the cache")
	}
}

// TestClosedPool checks Submit after Close and unknown-ID lookups.
func TestClosedPool(t *testing.T) {
	pool := NewPool(Options{Workers: 1, QueueDepth: 1})
	pool.Close()
	if _, err := pool.Submit(annealBundle(t, "anneal.sa", 10, 1)); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
	if _, err := pool.Status("job-00000001"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("status unknown: %v, want ErrNotFound", err)
	}
	if _, err := pool.Result("job-00000001"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("result unknown: %v, want ErrNotFound", err)
	}
	if _, err := pool.Wait("job-00000001"); !errors.Is(err, ErrNotFound) {
		t.Fatalf("wait unknown: %v, want ErrNotFound", err)
	}
}

// TestCacheKey pins the content-address semantics: provenance does not
// affect the key; seed, shots and context do.
func TestCacheKey(t *testing.T) {
	base := annealBundle(t, "anneal.sa", 50, 7)
	k1, err := CacheKey(base)
	if err != nil {
		t.Fatal(err)
	}

	same := annealBundle(t, "anneal.sa", 50, 7)
	same.Provenance = &bundle.Provenance{CreatedBy: "someone/else", Version: "9.9.9"}
	k2, err := CacheKey(same)
	if err != nil {
		t.Fatal(err)
	}
	if k1 != k2 {
		t.Fatal("provenance must not change the cache key")
	}

	if k, _ := CacheKey(annealBundle(t, "anneal.sa", 50, 8)); k == k1 {
		t.Fatal("seed must change the cache key")
	}
	if k, _ := CacheKey(annealBundle(t, "anneal.sa", 51, 7)); k == k1 {
		t.Fatal("read count must change the cache key")
	}
	if k, _ := CacheKey(annealBundle(t, "anneal.neal", 50, 7)); k == k1 {
		t.Fatal("engine must change the cache key")
	}
	if !strings.HasPrefix(k1, "sha256:") {
		t.Fatalf("key %q lacks the sha256: prefix", k1)
	}
}

// TestInFlightDuplicatesCoalesce submits two duplicates of a job that is
// *currently executing*: they must attach to the running job's completion
// (no second execution, no queue slot) and finish the moment it does.
func TestInFlightDuplicatesCoalesce(t *testing.T) {
	fake := &fakeBackend{block: make(chan struct{}), ran: make(chan struct{}, 4)}
	registerFake(t, "fake.inflight_dup", fake)

	// QueueDepth 1: the coalesced duplicates must not consume queue
	// slots, or the second submission would be rejected.
	pool := NewPool(Options{Workers: 1, QueueDepth: 1})
	defer pool.Close()

	ids := make([]string, 3)
	for i := range ids {
		id, err := pool.Submit(annealBundle(t, "fake.inflight_dup", 50, 9))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
		if i == 0 {
			<-fake.ran // ensure duplicates are submitted while job 1 runs
		}
	}
	close(fake.block)
	for i, id := range ids {
		st, err := pool.Wait(id)
		if err != nil || st.State != StateDone {
			t.Fatalf("job %s: %v / %+v", id, err, st)
		}
		if wantCoalesce := i > 0; st.Coalesced != wantCoalesce {
			t.Fatalf("job %d coalesced = %v, want %v", i, st.Coalesced, wantCoalesce)
		}
		if st.CacheHit {
			t.Fatalf("job %d reported a cache hit; in-flight duplicates must coalesce instead", i)
		}
		res, err := pool.Result(id)
		if err != nil || len(res.Entries) != 2 {
			t.Fatalf("job %s result: %v / %+v", id, err, res)
		}
	}
	if got := fake.execs.Load(); got != 1 {
		t.Fatalf("executions = %d, want 1", got)
	}
	if s := pool.Stats(); s.Coalesced != 2 || s.CacheHits != 0 || s.Completed != 3 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestCoalescedDuplicateSharesFailure checks that coalesced duplicates
// inherit the primary's failure instead of hanging or re-executing.
func TestCoalescedDuplicateSharesFailure(t *testing.T) {
	fake := &fakeBackend{block: make(chan struct{}), ran: make(chan struct{}, 2), fail: true}
	registerFake(t, "fake.inflight_fail", fake)

	pool := NewPool(Options{Workers: 1, QueueDepth: 2})
	defer pool.Close()

	id1, err := pool.Submit(annealBundle(t, "fake.inflight_fail", 50, 3))
	if err != nil {
		t.Fatal(err)
	}
	<-fake.ran
	id2, err := pool.Submit(annealBundle(t, "fake.inflight_fail", 50, 3))
	if err != nil {
		t.Fatal(err)
	}
	close(fake.block)
	for _, id := range []string{id1, id2} {
		st, err := pool.Wait(id)
		if err != nil || st.State != StateFailed {
			t.Fatalf("job %s: %v / %+v", id, err, st)
		}
		if _, err := pool.Result(id); err == nil {
			t.Fatalf("job %s: failed job returned a result", id)
		}
	}
	if got := fake.execs.Load(); got != 1 {
		t.Fatalf("executions = %d, want 1", got)
	}
}

// TestQueuedDuplicatesServedWithoutRerun queues three identical jobs
// while the only worker is blocked on an unrelated job, so none of the
// duplicates is in flight at submit time. The first executes; the others
// must still be served without re-execution (dequeue-time coalescing or
// cache, whichever fires first).
func TestQueuedDuplicatesServedWithoutRerun(t *testing.T) {
	blocker := &fakeBackend{block: make(chan struct{}), ran: make(chan struct{}, 2)}
	registerFake(t, "fake.queued_blocker", blocker)
	fake := &fakeBackend{}
	registerFake(t, "fake.queued_dup", fake)

	pool := NewPool(Options{Workers: 1, QueueDepth: 4})
	defer pool.Close()

	if _, err := pool.Submit(annealBundle(t, "fake.queued_blocker", 50, 1)); err != nil {
		t.Fatal(err)
	}
	<-blocker.ran // worker is now busy; everything below stays queued
	ids := make([]string, 3)
	for i := range ids {
		id, err := pool.Submit(annealBundle(t, "fake.queued_dup", 50, 9))
		if err != nil {
			t.Fatal(err)
		}
		ids[i] = id
	}
	close(blocker.block)
	for _, id := range ids {
		st, err := pool.Wait(id)
		if err != nil || st.State != StateDone {
			t.Fatalf("job %s: %v / %+v", id, err, st)
		}
	}
	if got := fake.execs.Load(); got != 1 {
		t.Fatalf("executions = %d, want 1", got)
	}
	if s := pool.Stats(); s.CacheHits+s.Coalesced != 2 {
		t.Fatalf("stats: %+v", s)
	}
}

// TestShardGrantScheduling checks the per-job parallelism policy: a job
// starting into an idle pool takes the full MaxShards grant, a job
// starting while another runs stays single-shard, and an explicit
// SubmitOptions pin wins (clamped to the cap).
func TestShardGrantScheduling(t *testing.T) {
	lone := &fakeBackend{}
	registerFake(t, "fake.shards_lone", lone)
	blocked := &fakeBackend{block: make(chan struct{}), ran: make(chan struct{}, 2)}
	registerFake(t, "fake.shards_blocked", blocked)
	rival := &fakeBackend{}
	registerFake(t, "fake.shards_rival", rival)

	pool := NewPool(Options{Workers: 2, QueueDepth: 8, CacheSize: -1, MaxShards: 8})
	defer pool.Close()

	// Idle pool: the lone job gets every shard.
	id, err := pool.Submit(annealBundle(t, "fake.shards_lone", 50, 1))
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := pool.Wait(id); st.Shards != 8 {
		t.Errorf("lone job granted %d shards, want 8", st.Shards)
	}

	// A job starting while another is running stays single-shard.
	blockID, err := pool.Submit(annealBundle(t, "fake.shards_blocked", 50, 2))
	if err != nil {
		t.Fatal(err)
	}
	<-blocked.ran
	rivalID, err := pool.Submit(annealBundle(t, "fake.shards_rival", 50, 3))
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := pool.Wait(rivalID); st.Shards != 1 {
		t.Errorf("concurrent job granted %d shards, want 1", st.Shards)
	}
	close(blocked.block)
	if st, _ := pool.Wait(blockID); st.Shards != 8 {
		t.Errorf("blocked lone job granted %d shards, want 8", st.Shards)
	}

	// Explicit pins are honored and clamped.
	id, err = pool.SubmitWith(annealBundle(t, "fake.shards_lone", 50, 4), SubmitOptions{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := pool.Wait(id); st.Shards != 3 {
		t.Errorf("pinned job granted %d shards, want 3", st.Shards)
	}
	id, err = pool.SubmitWith(annealBundle(t, "fake.shards_lone", 50, 5), SubmitOptions{Shards: 99})
	if err != nil {
		t.Fatal(err)
	}
	if st, _ := pool.Wait(id); st.Shards != 8 {
		t.Errorf("overpinned job granted %d shards, want clamp to 8", st.Shards)
	}

	if s := pool.Stats(); s.MaxShards != 8 || s.WideJobs < 3 {
		t.Errorf("stats: %+v", s)
	}
}

// TestTerminalRecordEviction checks the bounded job-history: beyond
// MaxRecords the oldest finished jobs stop resolving while recent ones
// and the per-job Wait snapshot keep working.
func TestTerminalRecordEviction(t *testing.T) {
	fake := &fakeBackend{}
	registerFake(t, "fake.evict", fake)

	pool := NewPool(Options{Workers: 1, QueueDepth: 8, CacheSize: -1, MaxRecords: 2})
	defer pool.Close()

	ids := make([]string, 3)
	for i := range ids {
		id, err := pool.Submit(annealBundle(t, "fake.evict", 50, uint64(i)))
		if err != nil {
			t.Fatal(err)
		}
		if st, err := pool.Wait(id); err != nil || st.State != StateDone {
			t.Fatalf("job %s: %v / %+v", id, err, st)
		}
		ids[i] = id
	}
	if _, err := pool.Status(ids[0]); !errors.Is(err, ErrNotFound) {
		t.Fatalf("oldest record should be evicted, got %v", err)
	}
	for _, id := range ids[1:] {
		if _, err := pool.Result(id); err != nil {
			t.Fatalf("recent record %s evicted: %v", id, err)
		}
	}
}

// TestSubmitCloseRace hammers Submit from several goroutines while Close
// runs; under -race this guards the enqueue-vs-channel-close ordering
// (Submit must never send on the closed queue).
func TestSubmitCloseRace(t *testing.T) {
	fake := &fakeBackend{}
	registerFake(t, "fake.closerace", fake)

	pool := NewPool(Options{Workers: 2, QueueDepth: 2, CacheSize: -1})
	b := annealBundle(t, "fake.closerace", 50, 1)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for n := 0; n < 100; n++ {
				if _, err := pool.Submit(b); err != nil &&
					!errors.Is(err, ErrClosed) && !errors.Is(err, ErrQueueFull) {
					t.Errorf("submit: %v", err)
					return
				}
			}
		}()
	}
	pool.Close()
	wg.Wait()
	if _, err := pool.Submit(b); !errors.Is(err, ErrClosed) {
		t.Fatalf("submit after close: %v, want ErrClosed", err)
	}
}

// TestCacheLRUEviction checks the cache keeps at most CacheSize entries
// and evicts least-recently-used first.
func TestCacheLRUEviction(t *testing.T) {
	fake := &fakeBackend{}
	registerFake(t, "fake.lru", fake)

	pool := NewPool(Options{Workers: 1, QueueDepth: 8, CacheSize: 2})
	defer pool.Close()

	submit := func(seed uint64) Status {
		t.Helper()
		id, err := pool.Submit(annealBundle(t, "fake.lru", 50, seed))
		if err != nil {
			t.Fatal(err)
		}
		st, err := pool.Wait(id)
		if err != nil {
			t.Fatal(err)
		}
		return st
	}

	submit(1)
	submit(2)
	submit(3) // evicts seed 1
	if s := pool.Stats(); s.CacheSize != 2 {
		t.Fatalf("cache size %d, want 2", s.CacheSize)
	}
	if st := submit(1); st.CacheHit {
		t.Fatal("seed 1 should have been evicted")
	}
	if st := submit(1); !st.CacheHit {
		t.Fatal("seed 1 should now be cached")
	}
}
