package runtime

import (
	"testing"

	"repro/internal/algolib"
	"repro/internal/bundle"
	"repro/internal/ctxdesc"
	"repro/internal/graph"
	"repro/internal/ising"
	"repro/internal/qdt"
	"repro/internal/qop"
)

func qaoaBundle(t *testing.T, ctx *ctxdesc.Context) *bundle.Bundle {
	t.Helper()
	reg := qdt.NewIsingVars("ising_vars", "s", 4)
	seq, err := algolib.BuildQAOA(reg, graph.Cycle(4), []float64{0.6}, []float64{0.4})
	if err != nil {
		t.Fatal(err)
	}
	b, err := bundle.New([]*qdt.DataType{reg}, seq, ctx)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func isingBundle(t *testing.T, ctx *ctxdesc.Context) *bundle.Bundle {
	t.Helper()
	reg := qdt.NewIsingVars("ising_vars", "s", 4)
	op, err := algolib.NewIsingProblem(reg, ising.FromMaxCut(graph.Cycle(4)))
	if err != nil {
		t.Fatal(err)
	}
	b, err := bundle.New([]*qdt.DataType{reg}, qop.Sequence{op}, ctx)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func TestSubmitGatePath(t *testing.T) {
	ctx := ctxdesc.NewGate("gate.statevector", 512, 42)
	res, err := Submit(qaoaBundle(t, ctx), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine != "gate.statevector" || res.Samples != 512 {
		t.Errorf("result shape: %s %d", res.Engine, res.Samples)
	}
	if res.Meta["intent_fingerprint"] == "" {
		t.Error("fingerprint missing from meta")
	}
}

func TestSubmitAnnealPath(t *testing.T) {
	ctx := ctxdesc.NewAnneal("anneal.neal", 200, 7)
	res, err := Submit(isingBundle(t, ctx), Options{})
	if err != nil {
		t.Fatal(err)
	}
	top, err := res.Top()
	if err != nil {
		t.Fatal(err)
	}
	if top.Bitstring != "1010" && top.Bitstring != "0101" {
		t.Errorf("top anneal outcome %q", top.Bitstring)
	}
}

func TestSchedulerSelectsAnnealForIsing(t *testing.T) {
	b := isingBundle(t, nil)
	engine, err := SelectEngine(b)
	if err != nil || engine != "anneal.sa" {
		t.Errorf("SelectEngine = %q, %v", engine, err)
	}
	// And Submit without context uses it.
	res, err := Submit(b, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Engine != "anneal.sa" {
		t.Errorf("engine = %s", res.Engine)
	}
}

func TestSchedulerSelectsGateForQAOA(t *testing.T) {
	engine, err := SelectEngine(qaoaBundle(t, nil))
	if err != nil || engine != "gate.statevector" {
		t.Errorf("SelectEngine = %q, %v", engine, err)
	}
}

func TestSchedulerRejectsMixedBundle(t *testing.T) {
	reg := qdt.NewIsingVars("ising_vars", "s", 4)
	prob, err := algolib.NewIsingProblem(reg, ising.FromMaxCut(graph.Cycle(4)))
	if err != nil {
		t.Fatal(err)
	}
	prep, err := algolib.NewPrepUniform(reg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := bundle.New([]*qdt.DataType{reg}, qop.Sequence{prep, prob}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SelectEngine(b); err == nil {
		t.Error("mixed bundle scheduled")
	}
}

func TestSchedulerCostGuardrail(t *testing.T) {
	reg := qdt.NewIsingVars("r", "r", 4)
	op := qop.New("huge", qop.PrepUniform, "r")
	op.CostHint = &qop.CostHint{TwoQ: MaxGateTwoQ + 1}
	b, err := bundle.New([]*qdt.DataType{reg}, qop.Sequence{op}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := SelectEngine(b); err == nil {
		t.Error("over-budget bundle scheduled")
	}
}

func TestSubmitUnknownEngine(t *testing.T) {
	ctx := ctxdesc.NewGate("quantum.magic", 10, 0)
	if _, err := Submit(qaoaBundle(t, ctx), Options{}); err == nil {
		t.Error("unknown engine accepted")
	}
}

func TestSubmitInvalidBundle(t *testing.T) {
	b := qaoaBundle(t, nil)
	b.QDTs = nil
	if _, err := Submit(b, Options{}); err == nil {
		t.Error("invalid bundle accepted")
	}
}

func TestE9IntentArtifactsUnchangedAcrossContexts(t *testing.T) {
	// The paper's central claim, end to end: one intent, three contexts.
	// The intent fingerprint must be identical across all runs, and the
	// serialized QDT/operator artifacts byte-identical.
	reg := qdt.NewIsingVars("ising_vars", "s", 4)
	m := ising.FromMaxCut(graph.Cycle(4))
	op, err := algolib.NewIsingProblem(reg, m)
	if err != nil {
		t.Fatal(err)
	}
	intent := qop.Sequence{op}

	mk := func(ctx *ctxdesc.Context) *bundle.Bundle {
		b, err := bundle.New([]*qdt.DataType{reg}, intent, ctx)
		if err != nil {
			t.Fatal(err)
		}
		return b
	}
	annealCtx := ctxdesc.NewAnneal("anneal.sa", 100, 1)
	annealEmbCtx := ctxdesc.NewAnneal("anneal.sa", 100, 1)
	annealEmbCtx.Anneal.Embed = true
	annealEmbCtx.Anneal.UnitCells = 1
	annealEmbCtx.Anneal.Sweeps = 300

	var fingerprints []string
	for _, ctx := range []*ctxdesc.Context{annealCtx, annealEmbCtx, nil} {
		b := mk(ctx)
		res, err := Submit(b, Options{})
		if err != nil {
			t.Fatal(err)
		}
		fp, _ := b.Fingerprint()
		fingerprints = append(fingerprints, fp)
		if got := res.Meta["intent_fingerprint"]; got != fp {
			t.Errorf("result fingerprint %v != bundle %v", got, fp)
		}
	}
	for i := 1; i < len(fingerprints); i++ {
		if fingerprints[i] != fingerprints[0] {
			t.Errorf("fingerprint changed with context: %s vs %s", fingerprints[i], fingerprints[0])
		}
	}
}
