package ising

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/graph"
	"repro/internal/rng"
)

func TestCycle4IsingGroundStates(t *testing.T) {
	// Paper §5: unit couplings on the 4-cycle. Ground states are the two
	// alternating configurations 0101 (=5) and 1010 (=10), energy -4.
	m := FromMaxCut(graph.Cycle(4))
	gs := m.BruteForce()
	if gs.Energy != -4 {
		t.Errorf("ground energy = %v, want -4", gs.Energy)
	}
	if len(gs.Masks) != 2 || gs.Masks[0] != 5 || gs.Masks[1] != 10 {
		t.Errorf("ground masks = %v, want [5 10]", gs.Masks)
	}
}

func TestCutFromEnergy(t *testing.T) {
	g := graph.Cycle(4)
	m := FromMaxCut(g)
	// Optimal: energy -4 -> cut 4. Uniform state (all same side): energy
	// +4 -> cut 0.
	if got := CutFromEnergy(g, m.EnergyBits(5)); got != 4 {
		t.Errorf("cut(0101) = %v, want 4", got)
	}
	if got := CutFromEnergy(g, m.EnergyBits(0)); got != 0 {
		t.Errorf("cut(0000) = %v, want 0", got)
	}
	if got := CutFromEnergy(g, m.EnergyBits(1)); got != 2 {
		t.Errorf("cut(0001) = %v, want 2", got)
	}
}

func TestCutEnergyCorrespondenceAllMasks(t *testing.T) {
	g := graph.ErdosRenyi(8, 0.6, 42)
	m := FromMaxCut(g)
	for mask := uint64(0); mask < 256; mask++ {
		cut := g.CutValueBits(mask)
		fromE := CutFromEnergy(g, m.EnergyBits(mask))
		if math.Abs(cut-fromE) > 1e-9 {
			t.Fatalf("mask %b: cut %v != energy-derived %v", mask, cut, fromE)
		}
	}
}

func TestEnergyManual(t *testing.T) {
	m := NewModel(2)
	m.H[0] = 0.5
	m.H[1] = -1
	m.SetJ(0, 1, 2)
	// s = (+1, +1): 0.5 - 1 + 2 = 1.5
	if e := m.Energy([]int8{1, 1}); e != 1.5 {
		t.Errorf("E(+,+) = %v, want 1.5", e)
	}
	// s = (+1, -1): 0.5 + 1 - 2 = -0.5
	if e := m.Energy([]int8{1, -1}); e != -0.5 {
		t.Errorf("E(+,-) = %v, want -0.5", e)
	}
}

func TestEnergyPanicsOnBadSpin(t *testing.T) {
	m := NewModel(1)
	defer func() {
		if recover() == nil {
			t.Error("non-±1 spin accepted")
		}
	}()
	m.Energy([]int8{0})
}

func TestSetJValidation(t *testing.T) {
	m := NewModel(3)
	for _, fn := range []func(){
		func() { m.SetJ(0, 0, 1) },
		func() { m.SetJ(0, 3, 1) },
		func() { m.SetJ(-1, 1, 1) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Error("invalid SetJ did not panic")
				}
			}()
			fn()
		}()
	}
	m.SetJ(2, 0, 1.5)
	if m.GetJ(0, 2) != 1.5 || m.GetJ(2, 0) != 1.5 {
		t.Error("coupling order not normalized")
	}
	m.SetJ(0, 2, 0)
	if len(m.J) != 0 {
		t.Error("zero coupling not removed")
	}
}

func TestQUBOIsingRoundTripEnergies(t *testing.T) {
	// Property: for random QUBOs, ToIsing preserves energies on every
	// configuration, and Ising.ToQUBO inverts.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(8)
		q := NewQUBO(n)
		for i := 0; i < n; i++ {
			for j := i; j < n; j++ {
				if r.Float64() < 0.6 {
					q.Set(i, j, 2*r.Float64()-1)
				}
			}
		}
		q.Offset = r.Float64()
		m := q.ToIsing()
		back := m.ToQUBO()
		for mask := uint64(0); mask < uint64(1)<<uint(n); mask++ {
			eq := q.EnergyBits(mask)
			em := m.EnergyBits(mask)
			eb := back.EnergyBits(mask)
			if math.Abs(eq-em) > 1e-9 || math.Abs(eq-eb) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestIsingQUBORoundTripEnergies(t *testing.T) {
	f := func(seed uint64) bool {
		r := rng.New(seed)
		n := 1 + r.Intn(8)
		m := NewModel(n)
		for i := 0; i < n; i++ {
			m.H[i] = 2*r.Float64() - 1
			for j := i + 1; j < n; j++ {
				if r.Float64() < 0.5 {
					m.SetJ(i, j, 2*r.Float64()-1)
				}
			}
		}
		q := m.ToQUBO()
		for mask := uint64(0); mask < uint64(1)<<uint(n); mask++ {
			if math.Abs(m.EnergyBits(mask)-q.EnergyBits(mask)) > 1e-9 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestSpinsBitsRoundTrip(t *testing.T) {
	f := func(mask uint16) bool {
		s := SpinsFromBits(uint64(mask), 16)
		return BitsFromSpins(s) == uint64(mask)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestLocalFieldMatchesEnergyDelta(t *testing.T) {
	r := rng.New(13)
	m := NewModel(6)
	for i := 0; i < 6; i++ {
		m.H[i] = 2*r.Float64() - 1
		for j := i + 1; j < 6; j++ {
			m.SetJ(i, j, 2*r.Float64()-1)
		}
	}
	for mask := uint64(0); mask < 64; mask++ {
		s := SpinsFromBits(mask, 6)
		e0 := m.Energy(s)
		for i := 0; i < 6; i++ {
			field := m.LocalField(i, s)
			s[i] = -s[i]
			e1 := m.Energy(s)
			s[i] = -s[i]
			// Flipping spin i: ΔE = −2·s_i_new... with s_i old value:
			// ΔE = e1 − e0 = −2·s_i·field
			want := -2 * float64(s[i]) * field
			if math.Abs((e1-e0)-want) > 1e-9 {
				t.Fatalf("mask %b spin %d: ΔE = %v, want %v", mask, i, e1-e0, want)
			}
		}
	}
}

func TestAdjacencyList(t *testing.T) {
	m := FromMaxCut(graph.Cycle(4))
	adj := m.AdjacencyList()
	want := [][]int{{1, 3}, {0, 2}, {1, 3}, {0, 2}}
	for i := range want {
		if len(adj[i]) != len(want[i]) {
			t.Fatalf("adj[%d] = %v, want %v", i, adj[i], want[i])
		}
		for k := range want[i] {
			if adj[i][k] != want[i][k] {
				t.Fatalf("adj[%d] = %v, want %v", i, adj[i], want[i])
			}
		}
	}
}

func TestMaxAbsCoupling(t *testing.T) {
	m := NewModel(3)
	m.H[0] = -0.25
	m.SetJ(0, 1, 1.5)
	m.SetJ(1, 2, -2.5)
	if got := m.MaxAbsCoupling(); got != 2.5 {
		t.Errorf("MaxAbsCoupling = %v, want 2.5", got)
	}
}

func TestBruteForceDegenerateOffset(t *testing.T) {
	m := NewModel(2)
	m.Offset = 3
	gs := m.BruteForce()
	if gs.Energy != 3 {
		t.Errorf("zero model ground energy = %v, want offset 3", gs.Energy)
	}
	if len(gs.Masks) != 4 {
		t.Errorf("zero model has %d ground states, want all 4", len(gs.Masks))
	}
}

func TestCouplingsDeterministicOrder(t *testing.T) {
	m := NewModel(4)
	m.SetJ(2, 3, 1)
	m.SetJ(0, 1, 1)
	m.SetJ(0, 3, 1)
	cs := m.Couplings()
	want := [][2]int{{0, 1}, {0, 3}, {2, 3}}
	for i := range want {
		if cs[i] != want[i] {
			t.Fatalf("Couplings() = %v, want %v", cs, want)
		}
	}
}
