package qdt

import (
	"encoding/json"
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestListing2RoundTrip(t *testing.T) {
	// The paper's Listing 2 verbatim.
	src := `{
		"$schema": "qdt-core.schema.json",
		"id": "reg_phase",
		"name": "phase",
		"width": 10,
		"encoding_kind": "PHASE_REGISTER",
		"bit_order": "LSB_0",
		"measurement_semantics": "AS_PHASE",
		"phase_scale": "1/1024"
	}`
	d, err := FromJSON([]byte(src))
	if err != nil {
		t.Fatalf("Listing 2 rejected: %v", err)
	}
	if d.ID != "reg_phase" || d.Width != 10 || d.EncodingKind != PhaseRegister {
		t.Errorf("Listing 2 parsed incorrectly: %+v", d)
	}
	out, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	d2, err := FromJSON(out)
	if err != nil {
		t.Fatalf("re-marshaled descriptor rejected: %v", err)
	}
	if d2.ID != d.ID || d2.Name != d.Name || d2.Width != d.Width ||
		d2.EncodingKind != d.EncodingKind || d2.BitOrder != d.BitOrder ||
		d2.MeasurementSemantics != d.MeasurementSemantics || d2.PhaseScale != d.PhaseScale {
		t.Errorf("round trip changed descriptor: %+v vs %+v", d, d2)
	}
}

func TestNewPhaseRegisterMatchesListing2(t *testing.T) {
	d := NewPhaseRegister("reg_phase", "phase", 10)
	if d.PhaseScale != "1/1024" {
		t.Errorf("phase scale = %q, want 1/1024", d.PhaseScale)
	}
	if err := d.Validate(); err != nil {
		t.Errorf("constructor output invalid: %v", err)
	}
}

func TestValidateCatchesProblems(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(*DataType)
		want   string
	}{
		{"empty id", func(d *DataType) { d.ID = "" }, "id is empty"},
		{"zero width", func(d *DataType) { d.Width = 0 }, "not positive"},
		{"huge width", func(d *DataType) { d.Width = 63 }, "62-carrier"},
		{"bad kind", func(d *DataType) { d.EncodingKind = "WEIRD" }, "unknown encoding_kind"},
		{"bad order", func(d *DataType) { d.BitOrder = "BIG" }, "unknown bit_order"},
		{"bad semantics", func(d *DataType) { d.MeasurementSemantics = "AS_JPEG" }, "unknown measurement_semantics"},
		{"bad schema", func(d *DataType) { d.Schema = "other.json" }, "$schema"},
		{"phase without scale", func(d *DataType) { d.EncodingKind = PhaseRegister; d.PhaseScale = "" }, "requires phase_scale"},
		{"bad scale", func(d *DataType) { d.EncodingKind = PhaseRegister; d.PhaseScale = "x/y" }, "invalid phase_scale"},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			d := New("r", "r", 4, IntRegister, AsInt)
			c.mutate(d)
			err := d.Validate()
			if err == nil {
				t.Fatal("invalid descriptor accepted")
			}
			if !strings.Contains(err.Error(), c.want) {
				t.Errorf("error %q does not mention %q", err, c.want)
			}
		})
	}
}

func TestValidateReportsAllProblems(t *testing.T) {
	d := &DataType{Schema: SchemaName, Width: -1}
	err := d.Validate()
	if err == nil {
		t.Fatal("empty descriptor accepted")
	}
	for _, want := range []string{"id is empty", "not positive", "encoding_kind is empty", "bit_order is empty"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("aggregated error missing %q: %v", want, err)
		}
	}
}

func TestParsePhaseScale(t *testing.T) {
	cases := []struct {
		in   string
		want float64
		ok   bool
	}{
		{"1/1024", 1.0 / 1024, true},
		{"1/16", 0.0625, true},
		{"0.5", 0.5, true},
		{" 3 / 4 ", 0.75, true},
		{"1/0", 0, false},
		{"", 0, false},
		{"a/b", 0, false},
	}
	for _, c := range cases {
		got, err := ParsePhaseScale(c.in)
		if c.ok && (err != nil || math.Abs(got-c.want) > 1e-15) {
			t.Errorf("ParsePhaseScale(%q) = %v, %v; want %v", c.in, got, err, c.want)
		}
		if !c.ok && err == nil {
			t.Errorf("ParsePhaseScale(%q) accepted", c.in)
		}
	}
}

func TestIndexBitsLSB0(t *testing.T) {
	d := New("r", "r", 4, IntRegister, AsInt)
	// bits[i] is carrier i; LSB_0: carrier i has weight 2^i.
	k, err := d.IndexFromBits([]uint8{1, 0, 1, 0}) // 1 + 4 = 5
	if err != nil || k != 5 {
		t.Errorf("IndexFromBits = %d, %v; want 5", k, err)
	}
	bits, err := d.BitsFromIndex(5)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint8{1, 0, 1, 0}
	for i := range want {
		if bits[i] != want[i] {
			t.Errorf("BitsFromIndex(5) = %v, want %v", bits, want)
		}
	}
}

func TestIndexBitsMSB0(t *testing.T) {
	d := New("r", "r", 4, IntRegister, AsInt)
	d.BitOrder = MSB0
	// MSB_0: carrier 0 is the most significant bit.
	k, err := d.IndexFromBits([]uint8{1, 0, 1, 0}) // 8 + 2 = 10
	if err != nil || k != 10 {
		t.Errorf("MSB_0 IndexFromBits = %d, %v; want 10", k, err)
	}
}

func TestIndexFromBitsErrors(t *testing.T) {
	d := New("r", "r", 3, IntRegister, AsInt)
	if _, err := d.IndexFromBits([]uint8{1, 0}); err == nil {
		t.Error("short bit vector accepted")
	}
	if _, err := d.IndexFromBits([]uint8{1, 0, 2}); err == nil {
		t.Error("non-binary bit accepted")
	}
	if _, err := d.BitsFromIndex(8); err == nil {
		t.Error("out-of-range index accepted")
	}
}

func TestQuickIndexBitsRoundTrip(t *testing.T) {
	f := func(k uint16, msb bool) bool {
		d := New("r", "r", 16, IntRegister, AsInt)
		if msb {
			d.BitOrder = MSB0
		}
		bits, err := d.BitsFromIndex(uint64(k))
		if err != nil {
			return false
		}
		back, err := d.IndexFromBits(bits)
		return err == nil && back == uint64(k)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDecodeInt(t *testing.T) {
	d := New("r", "r", 4, IntRegister, AsInt)
	v, err := d.Decode(11)
	if err != nil || v.Int != 11 {
		t.Errorf("unsigned Decode(11) = %+v, %v", v, err)
	}
	d.Signed = true
	v, err = d.Decode(11) // 1011 two's complement in 4 bits = -5
	if err != nil || v.Int != -5 {
		t.Errorf("signed Decode(11) = %d, %v; want -5", v.Int, err)
	}
	v, err = d.Decode(7)
	if err != nil || v.Int != 7 {
		t.Errorf("signed Decode(7) = %d, %v; want 7", v.Int, err)
	}
}

func TestDecodeBool(t *testing.T) {
	d := NewIsingVars("ising_vars", "s", 4)
	v, err := d.Decode(5) // 0101 -> vars 0 and 2 true
	if err != nil {
		t.Fatal(err)
	}
	want := []bool{true, false, true, false}
	for i := range want {
		if v.Bools[i] != want[i] {
			t.Errorf("Decode(5).Bools = %v, want %v", v.Bools, want)
		}
	}
}

func TestDecodeSpin(t *testing.T) {
	d := New("r", "s", 3, IsingSpin, AsSpin)
	v, err := d.Decode(5) // bits 101 -> spins +1, -1, +1
	if err != nil {
		t.Fatal(err)
	}
	want := []int8{1, -1, 1}
	for i := range want {
		if v.Spins[i] != want[i] {
			t.Errorf("Decode(5).Spins = %v, want %v", v.Spins, want)
		}
	}
}

func TestDecodePhase(t *testing.T) {
	d := NewPhaseRegister("reg_phase", "phase", 10)
	v, err := d.Decode(512)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(v.Float-0.5) > 1e-12 {
		t.Errorf("Decode(512) phase = %v turns, want 0.5", v.Float)
	}
	if math.Abs(v.PhaseRadians()-math.Pi) > 1e-9 {
		t.Errorf("PhaseRadians = %v, want π", v.PhaseRadians())
	}
}

func TestDecodeFixedPoint(t *testing.T) {
	d := New("r", "x", 6, FixedPoint, AsFixed)
	d.FractionBits = 2
	d.Signed = true
	// k = 0b111111 = 63 -> signed -1 -> value -0.25
	v, err := d.Decode(63)
	if err != nil {
		t.Fatal(err)
	}
	if v.Int != -1 || math.Abs(v.Float+0.25) > 1e-12 {
		t.Errorf("fixed Decode(63) = int %d float %v, want -1, -0.25", v.Int, v.Float)
	}
	// k = 6 (000110) -> 6/4 = 1.5
	v, _ = d.Decode(6)
	if math.Abs(v.Float-1.5) > 1e-12 {
		t.Errorf("fixed Decode(6) = %v, want 1.5", v.Float)
	}
}

func TestDecodeBitsComposition(t *testing.T) {
	d := NewIsingVars("ising_vars", "s", 4)
	v, err := d.DecodeBits([]uint8{0, 1, 0, 1})
	if err != nil {
		t.Fatal(err)
	}
	if v.Index != 10 {
		t.Errorf("DecodeBits index = %d, want 10", v.Index)
	}
}

func TestBitstringLSBFirst(t *testing.T) {
	d := NewIsingVars("ising_vars", "s", 4)
	// Paper §5: optimal cuts are the strings "1010" and "0101".
	if s := d.BitstringLSBFirst(5); s != "1010" {
		t.Errorf("Bitstring(5) = %q, want 1010", s)
	}
	if s := d.BitstringLSBFirst(10); s != "0101" {
		t.Errorf("Bitstring(10) = %q, want 0101", s)
	}
}

func TestCompatible(t *testing.T) {
	a := NewIsingVars("a", "a", 4)
	b := NewIsingVars("b", "b", 4)
	if err := Compatible(a, b); err != nil {
		t.Errorf("compatible registers rejected: %v", err)
	}
	c := NewIsingVars("c", "c", 5)
	if err := Compatible(a, c); err == nil {
		t.Error("width mismatch accepted")
	}
	d := NewPhaseRegister("d", "d", 4)
	if err := Compatible(a, d); err == nil {
		t.Error("encoding mismatch accepted")
	}
	e := NewIsingVars("e", "e", 4)
	e.BitOrder = MSB0
	if err := Compatible(a, e); err == nil {
		t.Error("bit order mismatch accepted")
	}
}

func TestMarshalDefaultsSchema(t *testing.T) {
	d := &DataType{ID: "x", Name: "x", Width: 1, EncodingKind: BoolRegister,
		BitOrder: LSB0, MeasurementSemantics: AsBool}
	out, err := json.Marshal(d)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), SchemaName) {
		t.Errorf("marshaled descriptor missing schema: %s", out)
	}
}

func TestFromJSONRejectsGarbage(t *testing.T) {
	if _, err := FromJSON([]byte(`{"width": "ten"}`)); err == nil {
		t.Error("type-mismatched JSON accepted")
	}
	if _, err := FromJSON([]byte(`not json`)); err == nil {
		t.Error("malformed JSON accepted")
	}
}
