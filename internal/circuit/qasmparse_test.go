package circuit

import (
	"math"
	"testing"
	"testing/quick"

	"repro/internal/gates"
	"repro/internal/rng"
)

func TestFromQASMBell(t *testing.T) {
	src := `OPENQASM 2.0;
include "qelib1.inc";
qreg q[2];
creg c[2];
h q[0];
cx q[0],q[1];
measure q[0] -> c[0];
measure q[1] -> c[1];
`
	c, err := FromQASM(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.NumQubits != 2 || c.NumClbits != 2 {
		t.Fatalf("registers: %dq %dc", c.NumQubits, c.NumClbits)
	}
	counts := c.CountOps()
	if counts["h"] != 1 || counts["cx"] != 1 || counts["measure"] != 2 {
		t.Errorf("ops = %v", counts)
	}
}

func TestFromQASMExpressions(t *testing.T) {
	src := `OPENQASM 2.0;
include "qelib1.inc";
qreg q[1];
rz(pi/2) q[0];
rz(-pi/4) q[0];
rz(3*pi/4) q[0];
u1(0.5) q[0];
rx(2e-1) q[0];
ry((pi+1)/2) q[0];
`
	c, err := FromQASM(src)
	if err != nil {
		t.Fatal(err)
	}
	want := []float64{math.Pi / 2, -math.Pi / 4, 3 * math.Pi / 4, 0.5, 0.2, (math.Pi + 1) / 2}
	for i, w := range want {
		if math.Abs(c.Instrs[i].Params[0]-w) > 1e-12 {
			t.Errorf("param %d = %v, want %v", i, c.Instrs[i].Params[0], w)
		}
	}
}

func TestFromQASMComments(t *testing.T) {
	src := `OPENQASM 2.0; // header
include "qelib1.inc";
qreg q[1]; // one qubit
// a full-line comment
x q[0];
`
	c, err := FromQASM(src)
	if err != nil {
		t.Fatal(err)
	}
	if c.CountOps()["x"] != 1 {
		t.Errorf("ops = %v", c.CountOps())
	}
}

func TestFromQASMErrors(t *testing.T) {
	cases := []struct {
		name string
		src  string
	}{
		{"no header", "qreg q[1];\nx q[0];"},
		{"bad version", "OPENQASM 3.0;\nqreg q[1];"},
		{"unknown gate", "OPENQASM 2.0;\nqreg q[1];\nwarp q[0];"},
		{"bad operand", "OPENQASM 2.0;\nqreg q[1];\nx r[0];"},
		{"out of range", "OPENQASM 2.0;\nqreg q[1];\nx q[5];"},
		{"double qreg", "OPENQASM 2.0;\nqreg q[1];\nqreg r[1];"},
		{"bad expr", "OPENQASM 2.0;\nqreg q[1];\nrz(pi/) q[0];"},
		{"div zero", "OPENQASM 2.0;\nqreg q[1];\nrz(1/0) q[0];"},
		{"bad measure", "OPENQASM 2.0;\nqreg q[1];\ncreg c[1];\nmeasure q[0];"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			if _, err := FromQASM(tc.src); err == nil {
				t.Errorf("accepted:\n%s", tc.src)
			}
		})
	}
}

func TestQASMRoundTrip(t *testing.T) {
	// Property: ToQASM → FromQASM reproduces the instruction stream.
	f := func(seed uint64) bool {
		r := rng.New(seed)
		const nq = 4
		c := New(nq, nq)
		for i := 0; i < 15; i++ {
			switch r.Intn(7) {
			case 0:
				c.H(r.Intn(nq))
			case 1:
				c.RZ(r.Float64()*4-2, r.Intn(nq))
			case 2:
				a := r.Intn(nq)
				c.CX(a, (a+1)%nq)
			case 3:
				c.T(r.Intn(nq))
			case 4:
				a := r.Intn(nq)
				c.CPhase(r.Float64(), a, (a+2)%nq)
			case 5:
				c.SXGate(r.Intn(nq))
			case 6:
				c.Phase(r.Float64(), r.Intn(nq))
			}
		}
		c.MeasureAll()
		text, err := c.ToQASM()
		if err != nil {
			return false
		}
		back, err := FromQASM(text)
		if err != nil {
			return false
		}
		if len(back.Instrs) != len(c.Instrs) {
			return false
		}
		for i := range c.Instrs {
			a, b := c.Instrs[i], back.Instrs[i]
			if a.Op != b.Op || a.Gate != b.Gate || len(a.Qubits) != len(b.Qubits) {
				return false
			}
			for j := range a.Qubits {
				if a.Qubits[j] != b.Qubits[j] {
					return false
				}
			}
			for j := range a.Params {
				if math.Abs(a.Params[j]-b.Params[j]) > 1e-12 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Error(err)
	}
}

func TestQASMRoundTripBarrier(t *testing.T) {
	c := New(3, 0)
	c.H(0)
	c.Barrier()
	c.Barrier(0, 2)
	c.Gate(gates.CSWAP, []int{0, 1, 2})
	text, err := c.ToQASM()
	if err != nil {
		t.Fatal(err)
	}
	back, err := FromQASM(text)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.Instrs) != 4 {
		t.Fatalf("round trip gave %d instrs", len(back.Instrs))
	}
	if len(back.Instrs[1].Qubits) != 0 {
		t.Error("full barrier not preserved")
	}
	if len(back.Instrs[2].Qubits) != 2 {
		t.Error("partial barrier not preserved")
	}
}
