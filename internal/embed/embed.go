// Package embed implements hardware graphs and minor embedding for the
// annealing path: the step the D-Wave Ocean stack performs implicitly
// when a logical Ising problem's connectivity exceeds the physical
// topology.
//
// The hardware family is the Chimera graph C(m): an m×m grid of K_{4,4}
// unit cells with vertical couplers between same-index left-side qubits of
// vertically adjacent cells and horizontal couplers between same-index
// right-side qubits of horizontally adjacent cells. Embedding maps each
// logical variable to a connected *chain* of physical qubits held together
// by a strong ferromagnetic coupling; unembedding majority-votes each
// chain back to one spin.
package embed

import (
	"fmt"
	"sort"

	"repro/internal/ising"
)

// Hardware is an undirected physical-qubit graph.
type Hardware struct {
	N   int
	adj [][]int
}

// Adjacent reports whether physical qubits a and b are coupled.
func (h *Hardware) Adjacent(a, b int) bool {
	for _, v := range h.adj[a] {
		if v == b {
			return true
		}
	}
	return false
}

// Neighbors returns the sorted coupler list of physical qubit p.
func (h *Hardware) Neighbors(p int) []int { return h.adj[p] }

// Degree returns the coupler count of p.
func (h *Hardware) Degree(p int) int { return len(h.adj[p]) }

// EdgeCount returns the total number of couplers.
func (h *Hardware) EdgeCount() int {
	total := 0
	for _, ns := range h.adj {
		total += len(ns)
	}
	return total / 2
}

// Chimera returns C(m): m×m unit cells of K_{4,4}, 8m² qubits.
// Qubit id layout: ((row·m)+col)·8 + side·4 + index, side 0 = left
// (vertically linked), side 1 = right (horizontally linked).
func Chimera(m int) (*Hardware, error) {
	if m < 1 {
		return nil, fmt.Errorf("embed: chimera grid size %d < 1", m)
	}
	n := 8 * m * m
	h := &Hardware{N: n, adj: make([][]int, n)}
	id := func(row, col, side, idx int) int { return ((row*m)+col)*8 + side*4 + idx }
	addEdge := func(a, b int) {
		h.adj[a] = append(h.adj[a], b)
		h.adj[b] = append(h.adj[b], a)
	}
	for row := 0; row < m; row++ {
		for col := 0; col < m; col++ {
			// Intra-cell K_{4,4}.
			for i := 0; i < 4; i++ {
				for j := 0; j < 4; j++ {
					addEdge(id(row, col, 0, i), id(row, col, 1, j))
				}
			}
			// Vertical couplers (left side).
			if row+1 < m {
				for i := 0; i < 4; i++ {
					addEdge(id(row, col, 0, i), id(row+1, col, 0, i))
				}
			}
			// Horizontal couplers (right side).
			if col+1 < m {
				for i := 0; i < 4; i++ {
					addEdge(id(row, col, 1, i), id(row, col+1, 1, i))
				}
			}
		}
	}
	for v := range h.adj {
		sort.Ints(h.adj[v])
	}
	return h, nil
}

// Complete returns an all-to-all hardware graph (embedding on it is the
// identity).
func Complete(n int) *Hardware {
	h := &Hardware{N: n, adj: make([][]int, n)}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				h.adj[i] = append(h.adj[i], j)
			}
		}
	}
	return h
}

// Embedding maps logical variables to chains of physical qubits.
type Embedding struct {
	Chains [][]int // Chains[v] = physical qubits of logical v
	HW     *Hardware
}

// Validate checks chain disjointness, chain connectivity, and that every
// logical coupling has at least one physical coupler between its chains.
func (e *Embedding) Validate(m *ising.Model) error {
	owner := map[int]int{}
	for v, chain := range e.Chains {
		if len(chain) == 0 {
			return fmt.Errorf("embed: variable %d has an empty chain", v)
		}
		for _, p := range chain {
			if p < 0 || p >= e.HW.N {
				return fmt.Errorf("embed: variable %d uses nonexistent qubit %d", v, p)
			}
			if prev, taken := owner[p]; taken {
				return fmt.Errorf("embed: qubit %d shared by variables %d and %d", p, prev, v)
			}
			owner[p] = v
		}
		if !e.chainConnected(chain) {
			return fmt.Errorf("embed: variable %d chain %v is not connected", v, chain)
		}
	}
	for _, key := range m.Couplings() {
		if !e.chainsCoupled(key[0], key[1]) {
			return fmt.Errorf("embed: logical coupling (%d,%d) has no physical coupler", key[0], key[1])
		}
	}
	return nil
}

func (e *Embedding) chainConnected(chain []int) bool {
	if len(chain) == 1 {
		return true
	}
	in := map[int]bool{}
	for _, p := range chain {
		in[p] = true
	}
	seen := map[int]bool{chain[0]: true}
	stack := []int{chain[0]}
	for len(stack) > 0 {
		v := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, u := range e.HW.Neighbors(v) {
			if in[u] && !seen[u] {
				seen[u] = true
				stack = append(stack, u)
			}
		}
	}
	return len(seen) == len(chain)
}

func (e *Embedding) chainsCoupled(a, b int) bool {
	for _, p := range e.Chains[a] {
		for _, q := range e.Chains[b] {
			if e.HW.Adjacent(p, q) {
				return true
			}
		}
	}
	return false
}

// MaxChainLength returns the longest chain.
func (e *Embedding) MaxChainLength() int {
	max := 0
	for _, c := range e.Chains {
		if len(c) > max {
			max = len(c)
		}
	}
	return max
}

// PhysicalQubits returns the total number of physical qubits used.
func (e *Embedding) PhysicalQubits() int {
	total := 0
	for _, c := range e.Chains {
		total += len(c)
	}
	return total
}

// Find greedily embeds the model's coupling graph into hw: variables are
// placed in descending-degree order; each new variable's chain is grown
// from shortest physical paths to every already-placed neighbor chain
// (a minorminer-style heuristic, adequate for the benchmark scales).
func Find(m *ising.Model, hw *Hardware) (*Embedding, error) {
	n := m.N
	if n == 0 {
		return nil, fmt.Errorf("embed: empty model")
	}
	// Logical adjacency.
	ladj := m.AdjacencyList()
	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	sort.SliceStable(order, func(a, b int) bool { return len(ladj[order[a]]) > len(ladj[order[b]]) })

	used := make([]bool, hw.N)
	chains := make([][]int, n)

	for _, v := range order {
		// Collect placed neighbors.
		var placed []int
		for _, u := range ladj[v] {
			if chains[u] != nil {
				placed = append(placed, u)
			}
		}
		if len(placed) == 0 {
			// First placement: pick the free qubit with the most free
			// neighbors.
			best, bestScore := -1, -1
			for p := 0; p < hw.N; p++ {
				if used[p] {
					continue
				}
				score := 0
				for _, q := range hw.Neighbors(p) {
					if !used[q] {
						score++
					}
				}
				if score > bestScore {
					best, bestScore = p, score
				}
			}
			if best < 0 {
				return nil, fmt.Errorf("embed: no free qubits for variable %d", v)
			}
			chains[v] = []int{best}
			used[best] = true
			continue
		}
		// Multi-source BFS from each placed neighbor chain through free
		// qubits; choose a root minimizing total distance, then build the
		// chain from the union of the paths.
		dist := make([][]int, len(placed))
		prev := make([][]int, len(placed))
		for i, u := range placed {
			dist[i], prev[i] = bfsFrom(hw, chains[u], used)
		}
		bestRoot, bestTotal := -1, 1<<30
		for p := 0; p < hw.N; p++ {
			if used[p] {
				continue
			}
			total := 0
			ok := true
			for i := range placed {
				if dist[i][p] < 0 {
					ok = false
					break
				}
				total += dist[i][p]
			}
			if ok && total < bestTotal {
				bestRoot, bestTotal = p, total
			}
		}
		if bestRoot < 0 {
			return nil, fmt.Errorf("embed: cannot connect variable %d to its neighbors; hardware too small or fragmented", v)
		}
		chainSet := map[int]bool{bestRoot: true}
		for i := range placed {
			// Walk back from root toward the source chain; stop before
			// entering it (the path's first element belongs to the
			// neighbor chain).
			for p := bestRoot; ; {
				pr := prev[i][p]
				if pr < 0 {
					break
				}
				if used[pr] {
					break // reached the neighbor chain
				}
				chainSet[pr] = true
				p = pr
			}
		}
		chain := make([]int, 0, len(chainSet))
		for p := range chainSet {
			chain = append(chain, p)
		}
		sort.Ints(chain)
		chains[v] = chain
		for _, p := range chain {
			used[p] = true
		}
	}
	e := &Embedding{Chains: chains, HW: hw}
	if err := e.Validate(m); err != nil {
		return nil, fmt.Errorf("embed: heuristic produced an invalid embedding: %w", err)
	}
	return e, nil
}

// bfsFrom runs BFS from every qubit of a source chain through free qubits
// (the chain's own qubits are sources at distance 0; other used qubits are
// walls). dist[p] = -1 when unreachable; prev[p] walks back toward the
// chain.
func bfsFrom(hw *Hardware, chain []int, used []bool) (dist, prev []int) {
	dist = make([]int, hw.N)
	prev = make([]int, hw.N)
	for i := range dist {
		dist[i] = -1
		prev[i] = -1
	}
	queue := make([]int, 0, len(chain))
	for _, p := range chain {
		dist[p] = 0
		queue = append(queue, p)
	}
	for len(queue) > 0 {
		v := queue[0]
		queue = queue[1:]
		for _, u := range hw.Neighbors(v) {
			if dist[u] >= 0 {
				continue
			}
			if used[u] && dist[v] > 0 {
				continue // only step off the source chain into free qubits
			}
			if used[u] && !contains(chain, u) {
				continue
			}
			dist[u] = dist[v] + 1
			prev[u] = v
			queue = append(queue, u)
		}
	}
	return dist, prev
}

func contains(xs []int, x int) bool {
	for _, v := range xs {
		if v == x {
			return true
		}
	}
	return false
}

// EmbedModel produces the physical Ising model: each logical coupling is
// placed on one physical coupler between the chains, each logical field is
// spread across its chain, and chain links get ferromagnetic coupling
// −chainStrength. chainStrength 0 defaults to 2·max|J,h| + 1.
func (e *Embedding) EmbedModel(m *ising.Model, chainStrength float64) (*ising.Model, error) {
	if err := e.Validate(m); err != nil {
		return nil, err
	}
	if chainStrength == 0 {
		chainStrength = 2*m.MaxAbsCoupling() + 1
	}
	if chainStrength < 0 {
		return nil, fmt.Errorf("embed: negative chain strength %v", chainStrength)
	}
	phys := ising.NewModel(e.HW.N)
	// Fields spread across chains.
	for v, chain := range e.Chains {
		per := m.H[v] / float64(len(chain))
		for _, p := range chain {
			phys.H[p] += per
		}
	}
	// Logical couplings on one physical coupler each.
	for _, key := range m.Couplings() {
		placed := false
		for _, p := range e.Chains[key[0]] {
			for _, q := range e.Chains[key[1]] {
				if e.HW.Adjacent(p, q) {
					phys.SetJ(p, q, phys.GetJ(p, q)+m.GetJ(key[0], key[1]))
					placed = true
					break
				}
			}
			if placed {
				break
			}
		}
	}
	// Ferromagnetic chain links along a spanning tree of each chain
	// (every intra-chain physical coupler gets the link; simpler and
	// stronger).
	for _, chain := range e.Chains {
		for i, p := range chain {
			for _, q := range chain[i+1:] {
				if e.HW.Adjacent(p, q) {
					phys.SetJ(p, q, phys.GetJ(p, q)-chainStrength)
				}
			}
		}
	}
	return phys, nil
}

// Unembed maps a physical configuration back to logical spins by majority
// vote within each chain (ties break to +1) and reports how many chains
// were broken (not unanimous).
func (e *Embedding) Unembed(physMask uint64) (logical uint64, brokenChains int) {
	for v, chain := range e.Chains {
		up := 0
		for _, p := range chain {
			if physMask>>uint(p)&1 == 1 {
				up++
			}
		}
		if up*2 >= len(chain) {
			logical |= 1 << uint(v)
		}
		if up != 0 && up != len(chain) {
			brokenChains++
		}
	}
	return logical, brokenChains
}
