package algolib

import (
	"fmt"

	"repro/internal/graph"
	"repro/internal/ising"
	"repro/internal/qdt"
	"repro/internal/qop"
)

// NewIsingCostPhase builds one QAOA cost layer: e^{-iγ Σ w_uv Z_u Z_v}
// over the problem graph, carried as edge/weight arrays exactly as the
// paper's Fig. 2 describes ("each ISING_COST_PHASE carries a phase angle
// γ and the problem graph (edges, weights)").
func NewIsingCostPhase(reg *qdt.DataType, g *graph.Graph, gamma float64) (*qop.Operator, error) {
	if err := reg.Validate(); err != nil {
		return nil, err
	}
	if g.N != reg.Width {
		return nil, fmt.Errorf("algolib: graph has %d vertices, register width %d", g.N, reg.Width)
	}
	op := newOp("ising_cost_phase", qop.IsingCostPhase, reg.ID)
	op.SetParam("gamma", gamma)
	edges := make([]any, len(g.Edges))
	weights := make([]any, len(g.Edges))
	for i, e := range g.Edges {
		edges[i] = []any{float64(e.U), float64(e.V)}
		weights[i] = e.Weight
	}
	op.SetParam("edges", edges)
	op.SetParam("weights", weights)
	op.CostHint = &qop.CostHint{TwoQ: 2 * len(g.Edges), OneQ: len(g.Edges), Depth: 3 * len(g.Edges)}
	return op, nil
}

// NewMixerRX builds one QAOA mixer layer: RX(2β) on every carrier.
func NewMixerRX(reg *qdt.DataType, beta float64) (*qop.Operator, error) {
	if err := reg.Validate(); err != nil {
		return nil, err
	}
	op := newOp("mixer_rx", qop.MixerRX, reg.ID)
	op.SetParam("beta", beta)
	op.CostHint = &qop.CostHint{OneQ: reg.Width, Depth: 1}
	return op, nil
}

// BuildQAOA emits the full §5/Fig. 2 descriptor stack for Max-Cut:
// PREP_UNIFORM, then p alternating (ISING_COST_PHASE, MIXER_RX) layers,
// then a MEASUREMENT carrying the explicit result schema. gammas and
// betas must have equal length p ≥ 1.
func BuildQAOA(reg *qdt.DataType, g *graph.Graph, gammas, betas []float64) (qop.Sequence, error) {
	if len(gammas) != len(betas) || len(gammas) == 0 {
		return nil, fmt.Errorf("algolib: QAOA needs equal non-empty angle lists, got %d/%d", len(gammas), len(betas))
	}
	prep, err := NewPrepUniform(reg)
	if err != nil {
		return nil, err
	}
	seq := qop.Sequence{prep}
	for layer := range gammas {
		cost, err := NewIsingCostPhase(reg, g, gammas[layer])
		if err != nil {
			return nil, err
		}
		mixer, err := NewMixerRX(reg, betas[layer])
		if err != nil {
			return nil, err
		}
		seq = append(seq, cost, mixer)
	}
	seq = append(seq, NewMeasurement(reg))
	return seq, nil
}

// NewIsingProblem emits the §5/Fig. 3 anneal-path descriptor: a single
// ISING_PROBLEM declaring the energy E(s) = Σ h_i s_i + Σ J_ij s_i s_j
// over the register's logical spins.
func NewIsingProblem(reg *qdt.DataType, m *ising.Model) (*qop.Operator, error) {
	if err := reg.Validate(); err != nil {
		return nil, err
	}
	if m.N != reg.Width {
		return nil, fmt.Errorf("algolib: model has %d spins, register width %d", m.N, reg.Width)
	}
	op := newOp("ising_problem", qop.IsingProblem, reg.ID)
	op.SetParam("h", toAnySlice(m.H))
	var couplings []any
	for _, key := range m.Couplings() {
		couplings = append(couplings, []any{float64(key[0]), float64(key[1]), m.GetJ(key[0], key[1])})
	}
	op.SetParam("couplings", couplings)
	op.SetParam("offset", m.Offset)
	op.CostHint = &qop.CostHint{Depth: 1, TwoQ: len(couplings)}
	attachDefaultResult(op, reg)
	return op, nil
}

// IsingModelFromOp reconstructs the Ising model from an ISING_PROBLEM
// descriptor (the anneal backend's lowering hook).
func IsingModelFromOp(op *qop.Operator, width int) (*ising.Model, error) {
	if op.RepKind != qop.IsingProblem {
		return nil, fmt.Errorf("algolib: op %q is %s, want ISING_PROBLEM", op.Name, op.RepKind)
	}
	h, err := floatSliceParam(op, "h")
	if err != nil {
		return nil, err
	}
	if len(h) != width {
		return nil, fmt.Errorf("algolib: h has %d entries, register width %d", len(h), width)
	}
	m := ising.NewModel(width)
	copy(m.H, h)
	if off, err := op.ParamFloatDefault("offset", 0); err == nil {
		m.Offset = off
	} else {
		return nil, err
	}
	raw, ok := op.Params["couplings"]
	if !ok || raw == nil {
		// A coupling-free model serializes as JSON null after clone
		// round-trips; treat it as empty.
		return m, nil
	}
	list, isList := raw.([]any)
	if !isList {
		return nil, fmt.Errorf("algolib: couplings param is %T", raw)
	}
	for idx, entry := range list {
		triple, isT := entry.([]any)
		if !isT || len(triple) != 3 {
			return nil, fmt.Errorf("algolib: coupling %d malformed", idx)
		}
		vals := make([]float64, 3)
		for k, e := range triple {
			f, isF := e.(float64)
			if !isF {
				return nil, fmt.Errorf("algolib: coupling %d element %d is %T", idx, k, e)
			}
			vals[k] = f
		}
		i, j := int(vals[0]), int(vals[1])
		if i < 0 || j < 0 || i >= width || j >= width || i == j {
			return nil, fmt.Errorf("algolib: coupling %d indices (%d,%d) invalid for width %d", idx, i, j, width)
		}
		m.SetJ(i, j, m.GetJ(i, j)+vals[2])
	}
	return m, nil
}

// GraphFromCostPhase reconstructs the problem graph from an
// ISING_COST_PHASE descriptor.
func GraphFromCostPhase(op *qop.Operator, width int) (*graph.Graph, error) {
	if op.RepKind != qop.IsingCostPhase {
		return nil, fmt.Errorf("algolib: op %q is %s, want ISING_COST_PHASE", op.Name, op.RepKind)
	}
	rawEdges, ok := op.Params["edges"].([]any)
	if !ok {
		return nil, fmt.Errorf("algolib: op %q missing edges", op.Name)
	}
	weights, err := floatSliceParam(op, "weights")
	if err != nil {
		return nil, err
	}
	if len(weights) != len(rawEdges) {
		return nil, fmt.Errorf("algolib: %d edges but %d weights", len(rawEdges), len(weights))
	}
	g := graph.New(width)
	for idx, re := range rawEdges {
		pair, isP := re.([]any)
		if !isP || len(pair) != 2 {
			return nil, fmt.Errorf("algolib: edge %d malformed", idx)
		}
		u, okU := pair[0].(float64)
		v, okV := pair[1].(float64)
		if !okU || !okV {
			return nil, fmt.Errorf("algolib: edge %d endpoints not numeric", idx)
		}
		if err := g.AddEdge(int(u), int(v), weights[idx]); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// NewIsingEvolution builds the time-evolution operator e^{-iHt} for an
// Ising Hamiltonian (the paper §4.2's "Ising evolution operator" example).
func NewIsingEvolution(reg *qdt.DataType, m *ising.Model, time float64) (*qop.Operator, error) {
	op, err := NewIsingProblem(reg, m)
	if err != nil {
		return nil, err
	}
	op.Name = "ising_evolution"
	op.RepKind = qop.IsingEvolution
	op.SetParam("time", time)
	op.Result = nil
	op.CostHint = &qop.CostHint{TwoQ: 2 * len(m.J), OneQ: len(m.J) + m.N, Depth: 3*len(m.J) + 1}
	return op, nil
}

// NewTFIMEvolution builds the Trotterized time evolution of a transverse-
// field Ising model H = Σ J_ij Z_i Z_j + Σ h_i Z_i + g·Σ X_i: the
// non-commuting dynamics workload that makes the evolution template a real
// quantum-simulation entry rather than a diagonal phase. trotterSteps
// controls the first-order product-formula resolution.
func NewTFIMEvolution(reg *qdt.DataType, m *ising.Model, transverse, time float64, trotterSteps int) (*qop.Operator, error) {
	if trotterSteps < 1 {
		return nil, fmt.Errorf("algolib: trotter_steps %d < 1", trotterSteps)
	}
	op, err := NewIsingEvolution(reg, m, time)
	if err != nil {
		return nil, err
	}
	op.Name = "tfim_evolution"
	op.SetParam("transverse", transverse)
	op.SetParam("trotter_steps", trotterSteps)
	perStep := 2*len(m.J) + len(m.J) + 2*m.N
	op.CostHint = &qop.CostHint{
		TwoQ:  2 * len(m.J) * trotterSteps,
		OneQ:  (len(m.J) + m.N) * trotterSteps,
		Depth: perStep * trotterSteps,
	}
	return op, nil
}
