package runtime

import (
	"fmt"
	"testing"

	"repro/internal/algolib"
	"repro/internal/bundle"
	"repro/internal/ctxdesc"
	"repro/internal/graph"
	"repro/internal/qdt"
	"repro/internal/result"
)

// sweepBundle builds a symbolic one-layer QAOA sweep template over the
// given parameter grid.
func sweepBundle(t *testing.T, points [][]float64) *bundle.Bundle {
	t.Helper()
	reg := qdt.NewIsingVars("ising_vars", "s", 4)
	seq, err := algolib.BuildQAOASymbolic(reg, graph.Cycle(4), []string{"gamma0"}, []string{"beta0"})
	if err != nil {
		t.Fatal(err)
	}
	ctx := ctxdesc.NewGate("gate.statevector", 256, 11)
	ctx.Sweep = &ctxdesc.Sweep{Params: []string{"gamma0", "beta0"}, Points: points}
	b, err := bundle.New([]*qdt.DataType{reg}, seq, ctx)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

func entriesEqual(a, b *result.Result) error {
	if len(a.Entries) != len(b.Entries) {
		return fmt.Errorf("%d entries vs %d", len(a.Entries), len(b.Entries))
	}
	for i := range a.Entries {
		ea, eb := a.Entries[i], b.Entries[i]
		if ea.Value.Index != eb.Value.Index || ea.Count != eb.Count {
			return fmt.Errorf("entry %d: index/count (%d,%d) vs (%d,%d)",
				i, ea.Value.Index, ea.Count, eb.Value.Index, eb.Count)
		}
	}
	return nil
}

// TestSubmitSweepParity pins the sweep determinism contract at the
// runtime layer: every point's result — entries, fingerprint — is
// bit-identical to submitting that point's materialized concrete bundle
// on its own. The grid includes the degenerate (0,0) point that forces
// the concrete fallback inside the sweep path.
func TestSubmitSweepParity(t *testing.T) {
	points := [][]float64{
		{0.6, 0.4},
		{1.3, 2.2},
		{0, 0},
		{2.9, -0.7},
	}
	b := sweepBundle(t, points)
	concrete := make([]*bundle.Bundle, len(points))
	indices := make([]int, len(points))
	want := make([]*result.Result, len(points))
	for i, pt := range points {
		cb, err := b.BindPoint(pt)
		if err != nil {
			t.Fatalf("BindPoint(%v): %v", pt, err)
		}
		concrete[i], indices[i] = cb, i
		res, err := Submit(cb, Options{})
		if err != nil {
			t.Fatalf("concrete Submit point %d: %v", i, err)
		}
		want[i] = res
	}

	got := make([]*result.Result, len(points))
	err := SubmitSweep(b, concrete, indices, Options{}, func(i int, res *result.Result) error {
		if got[i] != nil {
			return fmt.Errorf("point %d delivered twice", i)
		}
		got[i] = res
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i := range points {
		if got[i] == nil {
			t.Fatalf("point %d never delivered", i)
		}
		if err := entriesEqual(got[i], want[i]); err != nil {
			t.Errorf("point %d: %v", i, err)
		}
		if got[i].Meta["intent_fingerprint"] != want[i].Meta["intent_fingerprint"] {
			t.Errorf("point %d fingerprint differs", i)
		}
	}
}

// TestBindPointFingerprint checks a materialized point is
// indistinguishable from a hand-built concrete bundle.
func TestBindPointFingerprint(t *testing.T) {
	b := sweepBundle(t, [][]float64{{0.6, 0.4}})
	cb, err := b.BindPoint([]float64{0.6, 0.4})
	if err != nil {
		t.Fatal(err)
	}
	reg := qdt.NewIsingVars("ising_vars", "s", 4)
	seq, err := algolib.BuildQAOA(reg, graph.Cycle(4), []float64{0.6}, []float64{0.4})
	if err != nil {
		t.Fatal(err)
	}
	ref, err := bundle.New([]*qdt.DataType{reg}, seq, ctxdesc.NewGate("gate.statevector", 256, 11))
	if err != nil {
		t.Fatal(err)
	}
	fpGot, err := cb.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	fpWant, err := ref.Fingerprint()
	if err != nil {
		t.Fatal(err)
	}
	if fpGot != fpWant {
		t.Fatalf("materialized fingerprint %s != concrete build %s", fpGot, fpWant)
	}
	if cb.Context.Sweep != nil {
		t.Fatal("sweep block survived materialization")
	}
}
