package result

import (
	"math"
	"testing"
)

func TestZExpectationSingleBit(t *testing.T) {
	// 75% |…0…⟩, 25% |…1…⟩ on bit 1 → ⟨Z₁⟩ = 0.5.
	entries := []Entry{
		{Index: 0, Count: 75},
		{Index: 2, Count: 25},
	}
	got, err := ZExpectation(entries, []int{1})
	if err != nil || math.Abs(got-0.5) > 1e-12 {
		t.Errorf("ZExpectation = %v, %v; want 0.5", got, err)
	}
}

func TestZExpectationParity(t *testing.T) {
	// Bell-like counts: half 00, half 11 → ⟨Z₀Z₁⟩ = 1, ⟨Z₀⟩ = 0.
	entries := []Entry{
		{Index: 0, Count: 500},
		{Index: 3, Count: 500},
	}
	zz, err := ZExpectation(entries, []int{0, 1})
	if err != nil || math.Abs(zz-1) > 1e-12 {
		t.Errorf("ZZ = %v, %v; want 1", zz, err)
	}
	z0, err := ZExpectation(entries, []int{0})
	if err != nil || math.Abs(z0) > 1e-12 {
		t.Errorf("Z0 = %v, %v; want 0", z0, err)
	}
	// Anticorrelated: 01 and 10 → ⟨Z₀Z₁⟩ = −1.
	anti := []Entry{{Index: 1, Count: 10}, {Index: 2, Count: 10}}
	zzAnti, _ := ZExpectation(anti, []int{0, 1})
	if math.Abs(zzAnti+1) > 1e-12 {
		t.Errorf("anticorrelated ZZ = %v, want -1", zzAnti)
	}
}

func TestZExpectationErrors(t *testing.T) {
	if _, err := ZExpectation([]Entry{{Index: 0, Count: 1}}, nil); err == nil {
		t.Error("empty Z string accepted")
	}
	if _, err := ZExpectation([]Entry{{Index: 0, Count: 1}}, []int{70}); err == nil {
		t.Error("out-of-range bit accepted")
	}
	if _, err := ZExpectation(nil, []int{0}); err == nil {
		t.Error("empty entries accepted")
	}
}

func TestIsingEnergyExpectation(t *testing.T) {
	// H = Z₀Z₁ with the §5 ground states only: energy −1 each sample…
	// wait: ground states of the 4-cycle restricted to one edge: 1010
	// has Z₀Z₂ parity… use a direct 2-spin check instead.
	// H = 0.5·Z₀ + Z₀Z₁; samples: 60× |00⟩ (E = 0.5+1), 40× |11⟩
	// (E = −0.5+1).
	entries := []Entry{
		{Index: 0, Count: 60},
		{Index: 3, Count: 40},
	}
	h := []float64{0.5, 0}
	j := map[[2]int]float64{{0, 1}: 1}
	mean, stderr, err := IsingEnergyExpectation(entries, h, j)
	if err != nil {
		t.Fatal(err)
	}
	want := (1.5*60 + 0.5*40) / 100
	if math.Abs(mean-want) > 1e-12 {
		t.Errorf("mean = %v, want %v", mean, want)
	}
	if stderr <= 0 || stderr > 0.1 {
		t.Errorf("stderr = %v out of plausible range", stderr)
	}
	// Deterministic sample: zero variance.
	det := []Entry{{Index: 0, Count: 100}}
	_, se, err := IsingEnergyExpectation(det, h, j)
	if err != nil || se != 0 {
		t.Errorf("deterministic stderr = %v, %v", se, err)
	}
	if _, _, err := IsingEnergyExpectation(nil, h, j); err == nil {
		t.Error("empty entries accepted")
	}
}
