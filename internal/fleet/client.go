package fleet

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	neturl "net/url"
	"strconv"
	"strings"

	"repro/internal/obs"
)

// errWorkerBusy is a worker's 429 backpressure translated into a routing
// signal: try another node rather than failing the submission.
var errWorkerBusy = errors.New("fleet: worker queue full")

// client speaks the /v1 worker protocol. Every call runs under both the
// caller's context and the http.Client's hard timeout, so a worker that
// accepts a connection and then hangs releases the dispatcher goroutine
// when the deadline fires — it can never wedge it.
type client struct {
	base string
	hc   *http.Client
}

func newClient(base string, hc *http.Client) *client {
	if !strings.Contains(base, "://") {
		base = "http://" + base
	}
	return &client{base: strings.TrimRight(base, "/"), hc: hc}
}

// remoteSubmit is a worker's 202 response to POST /v1/jobs.
type remoteSubmit struct {
	ID       string `json:"id"`
	State    string `json:"state"`
	CacheHit bool   `json:"cache_hit"`
}

// remoteStatus is a worker's GET /v1/jobs/{id} document (the fields the
// dispatcher consumes).
type remoteStatus struct {
	ID        string `json:"id"`
	State     string `json:"state"`
	Engine    string `json:"engine"`
	CacheHit  bool   `json:"cache_hit"`
	Coalesced bool   `json:"coalesced"`
	Shards    int    `json:"shards"`
	Error     string `json:"error"`
	// Sweep fields: a sub-sweep job reports its range-local progress.
	Sweep      bool `json:"sweep"`
	Points     int  `json:"points"`
	PointsDone int  `json:"points_done"`
	// Profile is the worker's kernel-granular execution profile document
	// (profiled jobs only; for sub-sweeps, the worker's per-kind
	// aggregate). Proxied opaquely — the dispatcher never parses it, so
	// worker-side profile schema evolution needs no fleet change.
	Profile json.RawMessage `json:"profile"`
}

type remoteError struct {
	Error string `json:"error"`
}

// submit forwards a canonical bundle. A 429 surfaces as errWorkerBusy so
// the router can spill to another node. A non-empty trace rides the
// X-Trace-Id header so the worker's journal, logs and spans carry the
// same fleet-wide ID the dispatcher assigned. profile rides the
// ?profile=true query form, since the forwarded body is re-derived from
// the parsed bundle and cannot carry the submission's top-level flag.
func (c *client) submit(ctx context.Context, raw []byte, pin int, trace string, profile bool) (remoteSubmit, error) {
	url := c.base + "/v1/jobs"
	q := neturl.Values{}
	if pin > 0 {
		q.Set("shards", strconv.Itoa(pin))
	}
	if profile {
		q.Set("profile", "true")
	}
	if len(q) > 0 {
		url += "?" + q.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		return remoteSubmit{}, fmt.Errorf("fleet: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if trace != "" {
		req.Header.Set(obs.TraceHeader, trace)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return remoteSubmit{}, fmt.Errorf("fleet: %w", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	switch resp.StatusCode {
	case http.StatusAccepted:
		var out remoteSubmit
		if err := json.Unmarshal(body, &out); err != nil || out.ID == "" {
			return remoteSubmit{}, fmt.Errorf("fleet: %s accepted with unreadable body: %v", c.base, err)
		}
		return out, nil
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		return remoteSubmit{}, errWorkerBusy
	default:
		return remoteSubmit{}, fmt.Errorf("fleet: %s: submit: %s", c.base, decodeErr(resp.StatusCode, body))
	}
}

// submitSweep forwards a sub-sweep bundle to a worker's POST /v1/sweeps.
// Backpressure spills to another node exactly like plain submissions;
// profile rides ?profile=true like plain submissions too.
func (c *client) submitSweep(ctx context.Context, raw []byte, trace string, profile bool) (remoteSubmit, error) {
	url := c.base + "/v1/sweeps"
	if profile {
		url += "?profile=true"
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(raw))
	if err != nil {
		return remoteSubmit{}, fmt.Errorf("fleet: %w", err)
	}
	req.Header.Set("Content-Type", "application/json")
	if trace != "" {
		req.Header.Set(obs.TraceHeader, trace)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return remoteSubmit{}, fmt.Errorf("fleet: %w", err)
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	switch resp.StatusCode {
	case http.StatusAccepted:
		var out remoteSubmit
		if err := json.Unmarshal(body, &out); err != nil || out.ID == "" {
			return remoteSubmit{}, fmt.Errorf("fleet: %s accepted sweep with unreadable body: %v", c.base, err)
		}
		return out, nil
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		return remoteSubmit{}, errWorkerBusy
	default:
		return remoteSubmit{}, fmt.Errorf("fleet: %s: sweep submit: %s", c.base, decodeErr(resp.StatusCode, body))
	}
}

// sweepResultRaw fetches a worker's indexed sub-sweep result document
// for range merging.
func (c *client) sweepResultRaw(ctx context.Context, id string) (code int, body []byte, err error) {
	resp, err := c.get(ctx, "/v1/sweeps/"+id)
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err = io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return 0, nil, fmt.Errorf("fleet: %s: sweep result body: %w", c.base, err)
	}
	return resp.StatusCode, body, nil
}

// status polls a remote job. notFound=true means the worker answered but
// no longer knows the ID (it restarted without durable state) — the
// re-forward signal, distinct from a transport error.
func (c *client) status(ctx context.Context, id string) (st remoteStatus, notFound bool, err error) {
	resp, err := c.get(ctx, "/v1/jobs/"+id)
	if err != nil {
		return remoteStatus{}, false, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	switch resp.StatusCode {
	case http.StatusOK:
		if err := json.Unmarshal(body, &st); err != nil {
			return remoteStatus{}, false, fmt.Errorf("fleet: %s: status body: %w", c.base, err)
		}
		return st, false, nil
	case http.StatusNotFound:
		return remoteStatus{}, true, nil
	default:
		return remoteStatus{}, false, fmt.Errorf("fleet: %s: status: %s", c.base, decodeErr(resp.StatusCode, body))
	}
}

// resultRaw fetches a remote result document verbatim for proxying.
func (c *client) resultRaw(ctx context.Context, id string) (code int, body []byte, err error) {
	resp, err := c.get(ctx, "/v1/jobs/"+id+"/result")
	if err != nil {
		return 0, nil, err
	}
	defer resp.Body.Close()
	body, err = io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	if err != nil {
		return 0, nil, fmt.Errorf("fleet: %s: result body: %w", c.base, err)
	}
	return resp.StatusCode, body, nil
}

// cancel forwards DELETE /v1/jobs/{id} and relays the worker's verdict.
func (c *client) cancel(ctx context.Context, id string) (code int, body []byte, err error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.base+"/v1/jobs/"+id, nil)
	if err != nil {
		return 0, nil, fmt.Errorf("fleet: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return 0, nil, fmt.Errorf("fleet: %w", err)
	}
	defer resp.Body.Close()
	body, _ = io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	return resp.StatusCode, body, nil
}

// stats fetches /v1/stats as a generic document — the probe heartbeat
// and the raw material for fleet-wide aggregation.
func (c *client) stats(ctx context.Context) (map[string]any, error) {
	resp, err := c.get(ctx, "/v1/stats")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fleet: %s: stats: %s", c.base, decodeErr(resp.StatusCode, body))
	}
	out := map[string]any{}
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, fmt.Errorf("fleet: %s: stats body: %w", c.base, err)
	}
	return out, nil
}

// engines fetches a worker's registered engine names.
func (c *client) engines(ctx context.Context) ([]string, error) {
	resp, err := c.get(ctx, "/v1/engines")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	body, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("fleet: %s: engines: %s", c.base, decodeErr(resp.StatusCode, body))
	}
	var out struct {
		Engines []string `json:"engines"`
	}
	if err := json.Unmarshal(body, &out); err != nil {
		return nil, fmt.Errorf("fleet: %s: engines body: %w", c.base, err)
	}
	return out.Engines, nil
}

func (c *client) get(ctx context.Context, path string) (*http.Response, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.base+path, nil)
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("fleet: %w", err)
	}
	return resp, nil
}

func decodeErr(code int, body []byte) string {
	var re remoteError
	if json.Unmarshal(body, &re) == nil && re.Error != "" {
		return fmt.Sprintf("%d: %s", code, re.Error)
	}
	return fmt.Sprintf("%d", code)
}
