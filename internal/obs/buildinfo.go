package obs

import (
	"runtime/debug"
	"sync"
)

// BuildInfo identifies the running binary: Go toolchain version plus the
// VCS revision stamped by the Go build system (empty outside a VCS
// checkout, e.g. plain `go test` in a module cache).
type BuildInfo struct {
	GoVersion string `json:"go_version"`
	Revision  string `json:"revision,omitempty"`
	Modified  bool   `json:"modified,omitempty"`
}

var buildOnce = sync.OnceValue(func() BuildInfo {
	bi := BuildInfo{}
	info, ok := debug.ReadBuildInfo()
	if !ok {
		return bi
	}
	bi.GoVersion = info.GoVersion
	for _, s := range info.Settings {
		switch s.Key {
		case "vcs.revision":
			bi.Revision = s.Value
		case "vcs.modified":
			bi.Modified = s.Value == "true"
		}
	}
	return bi
})

// Build returns the binary's build info (cached after the first call).
func Build() BuildInfo { return buildOnce() }

// RegisterBuildInfo adds the conventional constant build_info gauge to
// reg, labeled with the Go version and VCS revision.
func RegisterBuildInfo(reg *Registry) {
	bi := Build()
	reg.Gauge("build_info",
		"Constant 1; labels identify the binary's build.",
		Label{Name: "go_version", Value: bi.GoVersion},
		Label{Name: "revision", Value: bi.Revision},
	).Set(1)
}
