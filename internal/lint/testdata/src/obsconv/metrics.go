// Package obsfix is an obsconv fixture registering instruments against
// the real internal/obs registry.
package obsfix

import "repro/internal/obs"

// Register builds the fixture's instrument set.
func Register(reg *obs.Registry) {
	reg.Counter("fix_ops_total", "Operations processed.") // near-miss: convention-clean
	reg.Counter("fix_requests", "Requests seen.")         // want `obsconv: counter "fix_requests" must end in _total`
	reg.Gauge("fix_depth_total", "Queue depth.")          // want `obsconv: gauge "fix_depth_total" must not end in _total`
	reg.Histogram("fix_lat_bucket", "Latency.", nil)      // want `obsconv: metric name "fix_lat_bucket" ends in _bucket`
	reg.Gauge("FixBadName", "Camel case.")                // want `obsconv: metric name "FixBadName" is not lower-snake_case`
	reg.Counter("fix_dup_total", "First registration.")
	reg.Counter("fix_dup_total", "Second registration.") // want `obsconv: duplicate registration of "fix_dup_total" in Register`
}

// Lookup reads back one metric that Register created and one that
// nothing ever registers.
func Lookup(reg *obs.Registry) {
	reg.Counter("fix_ops_total", "")  // near-miss: registered with help in Register
	reg.Counter("fix_typo_total", "") // want `obsconv: metric "fix_typo_total" has empty help and no registration with help`
}

// Clash registers an existing name under another kind, which the
// registry would only catch by panicking at runtime.
func Clash(reg *obs.Registry) {
	reg.Gauge("fix_ops_total", "Operations, but as a gauge.") // want `obsconv: gauge "fix_ops_total" must not end in _total` // want `obsconv: metric "fix_ops_total" registered as Gauge here but as Counter elsewhere`
}

// dynamicValues stands in for a value set the analyzer cannot bound —
// the shape a job- or trace-ID leak would take.
var dynamicValues = []string{"alpha", "beta"}

// labelVar is a non-literal label name.
var labelVar = "kind"

// Families registers labeled instrument families; the analyzer must
// prove each label enum is a literal, bounded, duplicate-free []string.
func Families(reg *obs.Registry) {
	reg.CounterFamily("fix_fam_ops_total", "Ops by kind.", "kind", []string{"alpha", "beta"})                                                                                                                                                                                                                // near-miss: convention-clean
	reg.HistogramFamily("fix_fam_lat_ms", "Latency by kind.", nil, "kind", []string{"alpha"})                                                                                                                                                                                                                // near-miss: convention-clean
	reg.CounterFamily("fix_fam_requests", "Requests.", "kind", []string{"alpha"})                                                                                                                                                                                                                            // want `obsconv: counter "fix_fam_requests" must end in _total`
	reg.HistogramFamily("fix_fam_dur_total", "Durations.", nil, "kind", []string{"alpha"})                                                                                                                                                                                                                   // want `obsconv: histogramfamily "fix_fam_dur_total" must not end in _total`
	reg.CounterFamily("fix_fam_badlabel_total", "Ops.", "Kind", []string{"alpha"})                                                                                                                                                                                                                           // want `obsconv: family "fix_fam_badlabel_total" label name "Kind" is not lower-snake_case`
	reg.CounterFamily("fix_fam_varlabel_total", "Ops.", labelVar, []string{"alpha"})                                                                                                                                                                                                                         // want `obsconv: family "fix_fam_varlabel_total" label name must be a string literal`
	reg.CounterFamily("fix_fam_dyn_total", "Ops.", "kind", dynamicValues)                                                                                                                                                                                                                                    // want `obsconv: family "fix_fam_dyn_total" value set must be a literal \[\]string`
	reg.CounterFamily("fix_fam_dupval_total", "Ops.", "kind", []string{"alpha", "alpha"})                                                                                                                                                                                                                    // want `obsconv: family "fix_fam_dupval_total" repeats label value "alpha"`
	reg.CounterFamily("fix_fam_novals_total", "Ops.", "kind", []string{})                                                                                                                                                                                                                                    // want `obsconv: family "fix_fam_novals_total" has an empty value set`
	reg.CounterFamily("fix_fam_blankval_total", "Ops.", "kind", []string{""})                                                                                                                                                                                                                                // want `obsconv: family "fix_fam_blankval_total" has an empty label value`
	reg.Gauge("fix_fam_lat_ms", "Latency, but as a gauge.")                                                                                                                                                                                                                                                  // want `obsconv: metric "fix_fam_lat_ms" registered as Gauge here but as Histogram elsewhere` // want `obsconv: duplicate registration of "fix_fam_lat_ms" in Families`
	reg.CounterFamily("fix_fam_wide_total", "Ops.", "kind", []string{"v00", "v01", "v02", "v03", "v04", "v05", "v06", "v07", "v08", "v09", "v10", "v11", "v12", "v13", "v14", "v15", "v16", "v17", "v18", "v19", "v20", "v21", "v22", "v23", "v24", "v25", "v26", "v27", "v28", "v29", "v30", "v31", "v32"}) // want `obsconv: family "fix_fam_wide_total" has 33 values; the registry caps label cardinality at 32`
}
