package sim

import (
	"fmt"
	"math"
	"math/bits"
	"math/cmplx"

	"repro/internal/circuit"
	"repro/internal/gates"
)

// This file implements the compile-then-execute engine: a circuit is
// lowered once into a kernel sequence (Compile), and the kernels are then
// swept over the statevector by the persistent shard pool (Execute). The
// compile step fuses runs of single-qubit gates on the same qubit into one
// 2×2 matrix, merges consecutive diagonal/phase gates into a single
// diagonal kernel, and specializes controlled permutations, so a deep
// circuit needs far fewer bandwidth-bound sweeps than one per gate.

// kernelKind enumerates the sweep shapes the executor knows.
type kernelKind uint8

const (
	// kGate1Q applies a fused 2×2 unitary to one qubit, iterating the
	// 2^(n-1) amplitude pairs directly.
	kGate1Q kernelKind = iota
	// kCtrlPerm swaps amplitude pairs over the subspace selected by
	// constrained bits — the specialization of CX, SWAP, CCX and CSWAP.
	kCtrlPerm
	// kCtrlPhase multiplies one phase onto the all-ones subspace of its
	// qubits — the specialization of CZ and CP before any merging.
	kCtrlPhase
	// kDiag multiplies a phase table indexed by a gathered local index —
	// the merged form of runs of diagonal gates.
	kDiag
	// kPermute and kInit are the scratch-buffer natives.
	kPermute
	kInit
)

// bitInsert expands a compact subspace index by one constrained bit; see
// expandIndex. Inserts are ordered by ascending bit position.
type bitInsert struct {
	low int // mask of the bits below the constrained position
	bit int // the constrained value, shifted into place
}

// expandIndex maps a compact index over the free bits to a full amplitude
// index with every constrained bit set to its required value.
func expandIndex(c int, inserts []bitInsert) int {
	for _, ins := range inserts {
		c = (c&^ins.low)<<1 | ins.bit | c&ins.low
	}
	return c
}

// kernel is one compiled sweep.
type kernel struct {
	kind    kernelKind
	support int  // bitmask of touched qubits
	diag    bool // diagonal in the computational basis

	// kGate1Q
	q int
	m gates.Matrix2

	// kCtrlPerm / kCtrlPhase
	inserts []bitInsert
	free    int // number of unconstrained bits; the sweep runs 2^free trips
	flip    int // kCtrlPerm: XOR mask exchanging the amplitude pair
	phase   complex128

	// kDiag / kPermute / kInit (local indexing: qubits[k] is bit k)
	qubits []int
	masks  []int
	phases []complex128
	perm   []uint64
	amps   []complex128
}

// PlanStats reports what compilation achieved.
type PlanStats struct {
	// SourceOps counts compiled instructions (measurements and barriers
	// excluded).
	SourceOps int
	// Kernels is the length of the compiled sequence; SourceOps−Kernels
	// sweeps were eliminated by fusion.
	Kernels int
	// Fused1Q counts single-qubit gates folded into an earlier 2×2 kernel.
	Fused1Q int
	// MergedDiag counts diagonal gates (CZ/CP/Diagonal) merged into an
	// earlier phase kernel.
	MergedDiag int
}

// Plan is a compiled circuit: a kernel sequence ready to execute against
// any state with the right qubit count. Plans are immutable after Compile
// and safe for concurrent Execute calls on distinct states.
type Plan struct {
	n       int
	kernels []kernel
	stats   PlanStats
}

// NumQubits returns the qubit count the plan was compiled for.
func (pl *Plan) NumQubits() int { return pl.n }

// Stats returns the compile-time fusion statistics.
func (pl *Plan) Stats() PlanStats { return pl.stats }

// maxFuseScan bounds how far the compiler looks back for a fusion partner
// while hopping over commuting kernels, so compilation stays linear in
// depth. 64 comfortably covers a full layer on MaxQubits qubits.
const maxFuseScan = 64

// maxDiagFuseQubits caps the qubit support of a merged diagonal kernel;
// the phase table holds 2^k entries and the gather costs k operations per
// amplitude, so growth past a cache line of table stops paying.
const maxDiagFuseQubits = 8

// Compile lowers a circuit into a kernel plan. It performs all static
// validation (qubit bounds, operand distinctness, init normalization), so
// Execute can sweep without per-gate checks. Measurements must be
// terminal, exactly as in Evolve.
func Compile(c *circuit.Circuit) (*Plan, error) {
	if c.NumQubits < 1 || c.NumQubits > MaxQubits {
		return nil, fmt.Errorf("sim: qubit count %d out of [1,%d]", c.NumQubits, MaxQubits)
	}
	pl := &Plan{n: c.NumQubits}
	seenMeasure := false
	for idx, ins := range c.Instrs {
		switch ins.Op {
		case circuit.OpMeasure:
			seenMeasure = true
			continue
		case circuit.OpBarrier:
			continue
		}
		if seenMeasure {
			return nil, fmt.Errorf("sim: instruction %d follows a measurement; mid-circuit measurement is not supported by the statevector engine", idx)
		}
		if err := pl.lower(ins); err != nil {
			return nil, fmt.Errorf("sim: instruction %d: %w", idx, err)
		}
		pl.stats.SourceOps++
	}
	pl.stats.Kernels = len(pl.kernels)
	return pl, nil
}

func (pl *Plan) checkQubits(qs ...int) error {
	seen := 0
	for _, q := range qs {
		if q < 0 || q >= pl.n {
			return fmt.Errorf("sim: qubit %d out of [0,%d)", q, pl.n)
		}
		if seen&(1<<q) != 0 {
			return fmt.Errorf("sim: duplicate qubit %d", q)
		}
		seen |= 1 << q
	}
	return nil
}

// lower turns one instruction into a primitive kernel and appends it with
// fusion.
func (pl *Plan) lower(ins circuit.Instruction) error {
	switch ins.Op {
	case circuit.OpGate:
		switch ins.Gate {
		case gates.CX:
			return pl.lowerCtrlPerm(
				[]int{ins.Qubits[0]}, []int{ins.Qubits[1]}, 1<<ins.Qubits[1])
		case gates.SWAP:
			return pl.lowerCtrlPerm(
				[]int{ins.Qubits[0]}, []int{ins.Qubits[1]},
				1<<ins.Qubits[0]|1<<ins.Qubits[1])
		case gates.CCX:
			return pl.lowerCtrlPerm(
				[]int{ins.Qubits[0], ins.Qubits[1]}, []int{ins.Qubits[2]}, 1<<ins.Qubits[2])
		case gates.CSWAP:
			return pl.lowerCtrlPerm(
				[]int{ins.Qubits[0], ins.Qubits[1]}, []int{ins.Qubits[2]},
				1<<ins.Qubits[1]|1<<ins.Qubits[2])
		case gates.CZ:
			return pl.lowerCtrlPhase(ins.Qubits, -1)
		case gates.CP:
			return pl.lowerCtrlPhase(ins.Qubits, cmplx.Exp(complex(0, ins.Params[0])))
		default:
			m, err := gates.Unitary1(ins.Gate, ins.Params)
			if err != nil {
				return err
			}
			q := ins.Qubits[0]
			if err := pl.checkQubits(q); err != nil {
				return err
			}
			pl.fuse1Q(kernel{
				kind: kGate1Q, support: 1 << q, q: q, m: m,
				diag: m[0][1] == 0 && m[1][0] == 0,
			})
			return nil
		}
	case circuit.OpDiagonal:
		if err := pl.checkQubits(ins.Qubits...); err != nil {
			return err
		}
		k := kernel{kind: kDiag, diag: true}
		k.qubits = append([]int(nil), ins.Qubits...)
		k.phases = append([]complex128(nil), ins.Phases...)
		k.finishDiag()
		pl.fuseDiag(k)
		return nil
	case circuit.OpPermute:
		if err := pl.checkQubits(ins.Qubits...); err != nil {
			return err
		}
		if len(ins.Perm) != 1<<len(ins.Qubits) {
			return fmt.Errorf("sim: permutation table size %d != 2^%d", len(ins.Perm), len(ins.Qubits))
		}
		k := kernel{kind: kPermute, support: qubitMask(ins.Qubits)}
		k.qubits = append([]int(nil), ins.Qubits...)
		k.perm = append([]uint64(nil), ins.Perm...)
		k.masks = qubitMasks(ins.Qubits)
		pl.kernels = append(pl.kernels, k)
		return nil
	case circuit.OpInit:
		if err := pl.checkQubits(ins.Qubits...); err != nil {
			return err
		}
		if len(ins.Amps) != 1<<len(ins.Qubits) {
			return fmt.Errorf("sim: init state size %d != 2^%d", len(ins.Amps), len(ins.Qubits))
		}
		norm := 0.0
		for _, a := range ins.Amps {
			norm += real(a)*real(a) + imag(a)*imag(a)
		}
		if math.Abs(norm-1) > 1e-9 {
			return fmt.Errorf("sim: init state not normalized (norm² = %v)", norm)
		}
		k := kernel{kind: kInit, support: qubitMask(ins.Qubits)}
		k.qubits = append([]int(nil), ins.Qubits...)
		k.amps = append([]complex128(nil), ins.Amps...)
		k.masks = qubitMasks(ins.Qubits)
		pl.kernels = append(pl.kernels, k)
		return nil
	}
	return fmt.Errorf("sim: unhandled opcode %d", ins.Op)
}

// lowerCtrlPerm builds the subspace-swap kernel for CX/SWAP/CCX/CSWAP:
// ones lists bits constrained to 1, zeros bits constrained to 0 (the pair
// member the sweep visits), flip exchanges the pair.
func (pl *Plan) lowerCtrlPerm(ones, zeros []int, flip int) error {
	qs := append(append([]int(nil), ones...), zeros...)
	if err := pl.checkQubits(qs...); err != nil {
		return err
	}
	k := kernel{
		kind:    kCtrlPerm,
		support: qubitMask(qs),
		inserts: makeInserts(ones, zeros),
		free:    pl.n - len(qs),
		flip:    flip,
	}
	pl.kernels = append(pl.kernels, k)
	return nil
}

func (pl *Plan) lowerCtrlPhase(qubits []int, ph complex128) error {
	if err := pl.checkQubits(qubits...); err != nil {
		return err
	}
	k := kernel{
		kind:    kCtrlPhase,
		support: qubitMask(qubits),
		diag:    true,
		inserts: makeInserts(qubits, nil),
		free:    pl.n - len(qubits),
		phase:   ph,
	}
	k.qubits = append([]int(nil), qubits...)
	pl.fuseDiag(k)
	return nil
}

// makeInserts builds the bit-insert list for the constrained positions:
// ones are fixed to 1, zeros to 0. Positions must be distinct.
func makeInserts(ones, zeros []int) []bitInsert {
	type con struct{ pos, val int }
	cons := make([]con, 0, len(ones)+len(zeros))
	for _, p := range ones {
		cons = append(cons, con{p, 1})
	}
	for _, p := range zeros {
		cons = append(cons, con{p, 0})
	}
	// Insertion sort by position ascending (≤ 3 constraints in practice).
	for i := 1; i < len(cons); i++ {
		for j := i; j > 0 && cons[j].pos < cons[j-1].pos; j-- {
			cons[j], cons[j-1] = cons[j-1], cons[j]
		}
	}
	inserts := make([]bitInsert, len(cons))
	for i, c := range cons {
		inserts[i] = bitInsert{low: 1<<c.pos - 1, bit: c.val << c.pos}
	}
	return inserts
}

func qubitMask(qs []int) int {
	m := 0
	for _, q := range qs {
		m |= 1 << q
	}
	return m
}

func qubitMasks(qs []int) []int {
	masks := make([]int, len(qs))
	for i, q := range qs {
		masks[i] = 1 << q
	}
	return masks
}

// finishDiag derives the cached fields of a kDiag kernel from its qubit
// list.
func (k *kernel) finishDiag() {
	k.support = qubitMask(k.qubits)
	k.masks = qubitMasks(k.qubits)
}

// commutes reports whether two kernels commute: disjoint qubit support, or
// both diagonal in the computational basis. The fusion scan may hop over a
// commuting kernel without changing circuit semantics.
func commutes(a, b *kernel) bool {
	return a.support&b.support == 0 || (a.diag && b.diag)
}

// fuse1Q appends a single-qubit kernel, first scanning back over commuting
// kernels for an earlier single-qubit kernel on the same qubit to fold
// into.
func (pl *Plan) fuse1Q(k kernel) {
	floor := len(pl.kernels) - maxFuseScan
	for i := len(pl.kernels) - 1; i >= 0 && i >= floor; i-- {
		t := &pl.kernels[i]
		if t.kind == kGate1Q && t.q == k.q {
			t.m = gates.Mul2(k.m, t.m) // t ran first: new = k·t
			t.diag = t.diag && k.diag
			pl.stats.Fused1Q++
			return
		}
		if !commutes(t, &k) {
			break
		}
	}
	pl.kernels = append(pl.kernels, k)
}

// fuseDiag appends a diagonal kernel (kCtrlPhase or kDiag), merging it
// into an earlier phase kernel when the combined qubit support stays
// within maxDiagFuseQubits. Two controlled phases on the same qubit pair
// collapse without building a table at all.
func (pl *Plan) fuseDiag(k kernel) {
	floor := len(pl.kernels) - maxFuseScan
	for i := len(pl.kernels) - 1; i >= 0 && i >= floor; i-- {
		t := &pl.kernels[i]
		if t.kind == kCtrlPhase && k.kind == kCtrlPhase && t.support == k.support {
			t.phase *= k.phase
			pl.stats.MergedDiag++
			return
		}
		if (t.kind == kCtrlPhase || t.kind == kDiag) &&
			bits.OnesCount(uint(t.support|k.support)) <= maxDiagFuseQubits {
			t.toDiag()
			mergeDiag(t, &k)
			pl.stats.MergedDiag++
			return
		}
		if !commutes(t, &k) {
			break
		}
	}
	pl.kernels = append(pl.kernels, k)
}

// toDiag rewrites a kCtrlPhase kernel as an equivalent kDiag table (the
// identity everywhere except the all-ones local index).
func (k *kernel) toDiag() {
	if k.kind != kCtrlPhase {
		return
	}
	n := len(k.qubits)
	phases := make([]complex128, 1<<n)
	for i := range phases {
		phases[i] = 1
	}
	phases[len(phases)-1] = k.phase
	k.kind = kDiag
	k.phases = phases
	k.inserts = nil
	k.finishDiag()
}

// mergeDiag folds src (kCtrlPhase or kDiag) into the kDiag kernel dst,
// extending dst's qubit list with src's new qubits and multiplying the
// phase tables pointwise over the union index space.
func mergeDiag(dst, src *kernel) {
	src.toDiag()
	union := append([]int(nil), dst.qubits...)
	for _, q := range src.qubits {
		if qubitMask(union)&(1<<q) == 0 {
			union = append(union, q)
		}
	}
	// posIn[i] maps union bit i to the kernel's local bit, or -1.
	posIn := func(k *kernel) []int {
		pos := make([]int, len(union))
		for i, uq := range union {
			pos[i] = -1
			for j, q := range k.qubits {
				if q == uq {
					pos[i] = j
					break
				}
			}
		}
		return pos
	}
	dstPos, srcPos := posIn(dst), posIn(src)
	phases := make([]complex128, 1<<len(union))
	for local := range phases {
		dl, sl := 0, 0
		for i := 0; i < len(union); i++ {
			if local>>i&1 == 1 {
				if dstPos[i] >= 0 {
					dl |= 1 << dstPos[i]
				}
				if srcPos[i] >= 0 {
					sl |= 1 << srcPos[i]
				}
			}
		}
		phases[local] = dst.phases[dl] * src.phases[sl]
	}
	dst.qubits = union
	dst.phases = phases
	dst.finishDiag()
}

// Execute applies the plan to st, sweeping each kernel across the shard
// pool with a barrier between kernels. shards ≤ 0 selects automatically
// (single-shard below the parallel threshold, GOMAXPROCS above).
func (pl *Plan) Execute(st *State, shards int) error {
	if st.n != pl.n {
		return fmt.Errorf("sim: plan compiled for %d qubits, state has %d", pl.n, st.n)
	}
	pool := newShardPool(resolveShards(len(st.amps), shards))
	defer pool.close()
	return pl.executeOn(st, pool)
}

// executeOn runs the kernel sequence on an existing pool; Run reuses the
// same pool afterwards for the CDF build.
func (pl *Plan) executeOn(st *State, pool *shardPool) error {
	a := st.amps
	for i := range pl.kernels {
		k := &pl.kernels[i]
		switch k.kind {
		case kGate1Q:
			stride := 1 << k.q
			m := k.m
			pool.do(len(a)/2, func(_, lo, hi int) {
				sweep1Q(a, m, stride, lo, hi)
			})
		case kCtrlPerm:
			pool.do(1<<k.free, func(_, lo, hi int) {
				sweepCtrlPerm(a, k.inserts, k.flip, lo, hi)
			})
		case kCtrlPhase:
			pool.do(1<<k.free, func(_, lo, hi int) {
				sweepCtrlPhase(a, k.inserts, k.phase, lo, hi)
			})
		case kDiag:
			pool.do(len(a), func(_, lo, hi int) {
				sweepDiag(a, k.masks, k.phases, lo, hi)
			})
		case kPermute:
			src := st.scratchBuf()
			pool.do(len(a), func(_, lo, hi int) {
				copy(src[lo:hi], a[lo:hi])
			})
			pool.do(len(a), func(_, lo, hi int) {
				sweepPermute(a, src, k.masks, k.perm, lo, hi)
			})
		case kInit:
			anyMask := k.support
			src := st.scratchBuf()
			bad := make([]int, pool.shards)
			for i := range bad {
				bad[i] = -1
			}
			pool.do(len(a), func(w, lo, hi int) {
				for i := lo; i < hi; i++ {
					if i&anyMask != 0 && cmplx.Abs(a[i]) > 1e-12 && bad[w] < 0 {
						bad[w] = i
					}
				}
				copy(src[lo:hi], a[lo:hi])
			})
			for _, b := range bad {
				if b >= 0 {
					return fmt.Errorf("sim: init target qubits not in |0…0⟩ (amplitude at %d)", b)
				}
			}
			amps := k.amps
			pool.do(len(a), func(_, lo, hi int) {
				sweepInit(a, src, k.masks, anyMask, amps, lo, hi)
			})
		}
	}
	return nil
}

// ---- sweep bodies, shared by plan execution and the State methods ----

// sweep1Q applies a 2×2 unitary to the amplitude pairs indexed by
// [lo, hi) ⊂ [0, 2^(n-1)): pair p expands to indices (i, i|stride) with
// the target bit cleared and set.
func sweep1Q(a []complex128, m gates.Matrix2, stride, lo, hi int) {
	low := stride - 1
	m00, m01, m10, m11 := m[0][0], m[0][1], m[1][0], m[1][1]
	for p := lo; p < hi; p++ {
		i := (p&^low)<<1 | p&low
		j := i | stride
		a0, a1 := a[i], a[j]
		a[i] = m00*a0 + m01*a1
		a[j] = m10*a0 + m11*a1
	}
}

// sweepCtrlPerm exchanges amplitude pairs (i, i^flip) over the compact
// subspace [lo, hi) ⊂ [0, 2^free).
func sweepCtrlPerm(a []complex128, inserts []bitInsert, flip, lo, hi int) {
	for c := lo; c < hi; c++ {
		i := expandIndex(c, inserts)
		j := i ^ flip
		a[i], a[j] = a[j], a[i]
	}
}

// sweepCtrlPhase multiplies ph onto the all-ones subspace.
func sweepCtrlPhase(a []complex128, inserts []bitInsert, ph complex128, lo, hi int) {
	for c := lo; c < hi; c++ {
		a[expandIndex(c, inserts)] *= ph
	}
}

// sweepDiag multiplies each amplitude by the table phase selected by its
// gathered local index.
func sweepDiag(a []complex128, masks []int, phases []complex128, lo, hi int) {
	for i := lo; i < hi; i++ {
		local := 0
		for k, mq := range masks {
			if i&mq != 0 {
				local |= 1 << k
			}
		}
		a[i] *= phases[local]
	}
}

// sweepPermute scatters dst[π(i)] = src[i] for source indices in [lo, hi).
// The permutation is a bijection, so every destination is written exactly
// once across all shards even though writes land outside [lo, hi).
func sweepPermute(dst, src []complex128, masks []int, perm []uint64, lo, hi int) {
	for i := lo; i < hi; i++ {
		local := 0
		for k, mq := range masks {
			if i&mq != 0 {
				local |= 1 << k
			}
		}
		to := int(perm[local])
		j := i
		for k, mq := range masks {
			if to&(1<<k) != 0 {
				j |= mq
			} else {
				j &^= mq
			}
		}
		dst[j] = src[i]
	}
}

// sweepInit writes dst[i] = src[i &^ anyMask] · amps[local(i)] for
// destination indices in [lo, hi); reads from src may cross shard
// boundaries, writes stay inside.
func sweepInit(dst, src []complex128, masks []int, anyMask int, amps []complex128, lo, hi int) {
	for i := lo; i < hi; i++ {
		local := 0
		for k, mq := range masks {
			if i&mq != 0 {
				local |= 1 << k
			}
		}
		dst[i] = src[i&^anyMask] * amps[local]
	}
}
