package algolib

import (
	"fmt"
	"math"

	"repro/internal/circuit"
	"repro/internal/gates"
	"repro/internal/qop"
)

// Lowered is the gate-path realization of a descriptor sequence.
type Lowered struct {
	Circuit *circuit.Circuit
	// Offsets maps register ids to their base qubit index.
	Offsets map[string]int
}

// Lower realizes an operator descriptor sequence as a circuit — the
// library's realization hook for gate targets (paper §4.4: "realization
// hooks … lower a quantum operator descriptor to a target-specific
// form"). Registers are packed in first-use order; the final MEASUREMENT
// (if any) defines the classical register via its result schema.
func Lower(ops qop.Sequence, regs Registers) (*Lowered, error) {
	return lowerSeq(ops, regs, nil)
}

func lowerSeq(ops qop.Sequence, regs Registers, env *paramEnv) (*Lowered, error) {
	if err := Validate(ops, regs); err != nil {
		return nil, err
	}
	// Register placement in first-use order.
	offsets := map[string]int{}
	next := 0
	place := func(id string) error {
		if _, done := offsets[id]; done {
			return nil
		}
		d, ok := regs[id]
		if !ok {
			return fmt.Errorf("algolib: register %q not in table", id)
		}
		offsets[id] = next
		next += d.Width
		return nil
	}
	for _, op := range ops {
		ids := []string{op.DomainQDT, op.CodomainQDT}
		for _, key := range []string{"eigen_qdt", "target_qdt", "flag_qdt", "a_qdt", "b_qdt"} {
			if v, ok := op.Params[key].(string); ok {
				ids = append(ids, v)
			}
		}
		for _, id := range ids {
			if id == "" {
				continue
			}
			if err := place(id); err != nil {
				return nil, err
			}
		}
	}
	numClbits := 0
	if m := ops.FinalMeasurement(); m != nil && m.Result != nil {
		numClbits = len(m.Result.ClbitOrder)
	}
	c := circuit.New(next, numClbits)
	for idx, op := range ops {
		if err := lowerOp(c, op, regs, offsets, env); err != nil {
			return nil, fmt.Errorf("algolib: lowering op %d (%s): %w", idx, op.Name, err)
		}
	}
	return &Lowered{Circuit: c, Offsets: offsets}, nil
}

func lowerOp(c *circuit.Circuit, op *qop.Operator, regs Registers, offsets map[string]int, env *paramEnv) error {
	base := offsets[op.DomainQDT]
	width := regs[op.DomainQDT].Width
	switch op.RepKind {
	case qop.PrepUniform:
		for q := 0; q < width; q++ {
			c.H(base + q)
		}
	case qop.PrepBasis:
		v, err := op.ParamFloat("value")
		if err != nil {
			return err
		}
		value := uint64(v)
		for q := 0; q < width; q++ {
			if value>>uint(q)&1 == 1 {
				c.X(base + q)
			}
		}
	case qop.AngleEncoding:
		if done, err := env.lowerAngleEncoding(c, op, base, width); done || err != nil {
			return err
		}
		angles, err := floatSliceParam(op, "angles")
		if err != nil {
			return err
		}
		if len(angles) != width {
			return fmt.Errorf("%d angles for width %d", len(angles), width)
		}
		for q, a := range angles {
			c.RY(a, base+q)
		}
	case qop.AmplitudeEnc:
		re, err := floatSliceParam(op, "re")
		if err != nil {
			return err
		}
		im, err := floatSliceParam(op, "im")
		if err != nil {
			return err
		}
		if len(re) != len(im) || len(re) != 1<<uint(width) {
			return fmt.Errorf("amplitude arrays sized %d/%d for width %d", len(re), len(im), width)
		}
		amps := make([]complex128, len(re))
		for i := range re {
			amps[i] = complex(re[i], im[i])
		}
		qubits := regQubits(base, width)
		return c.Init(qubits, amps)
	case qop.QFTTemplate:
		approx, err := op.ParamInt("approx_degree")
		if err != nil {
			return err
		}
		doSwaps, err := op.ParamBoolDefault("do_swaps", true)
		if err != nil {
			return err
		}
		inverse, err := op.ParamBoolDefault("inverse", false)
		if err != nil {
			return err
		}
		sub, err := QFTCircuit(width, approx, doSwaps, inverse)
		if err != nil {
			return err
		}
		return composeAt(c, sub, base)
	case qop.QPETemplate:
		return lowerQPE(c, op, regs, offsets)
	case qop.PhaseKickback:
		ctrl, err := op.ParamInt("control")
		if err != nil {
			return err
		}
		tgt, err := op.ParamInt("target")
		if err != nil {
			return err
		}
		angle, err := op.ParamFloat("angle")
		if err != nil {
			return err
		}
		c.CPhase(angle, base+ctrl, base+tgt)
	case qop.IsingCostPhase:
		g, err := GraphFromCostPhase(op, width)
		if err != nil {
			return err
		}
		if idx, sym, err := env.refIndex(op, "gamma"); err != nil {
			return err
		} else if sym {
			// Symbolic γ: same CX·RZ·CX structure, with the per-edge
			// constant 2w folded into the reference scale so a bind
			// computes (2w)·γ — bit-identical to the concrete
			// (2γ)·w (doubling is exact, one rounding each way).
			for _, e := range g.Edges {
				u, v := base+e.U, base+e.V
				c.CX(u, v)
				if err := c.GateRefs(gates.RZ, []int{v}, []float64{0}, []circuit.ParamRef{{Index: idx, Scale: 2 * e.Weight}}); err != nil {
					return err
				}
				c.CX(u, v)
			}
			return nil
		}
		gamma, err := op.ParamFloat("gamma")
		if err != nil {
			return err
		}
		for _, e := range g.Edges {
			u, v := base+e.U, base+e.V
			c.CX(u, v)
			c.RZ(2*gamma*e.Weight, v)
			c.CX(u, v)
		}
	case qop.MixerRX:
		if idx, sym, err := env.refIndex(op, "beta"); err != nil {
			return err
		} else if sym {
			for q := 0; q < width; q++ {
				if err := c.GateRefs(gates.RX, []int{base + q}, []float64{0}, []circuit.ParamRef{{Index: idx, Scale: 2}}); err != nil {
					return err
				}
			}
			return nil
		}
		beta, err := op.ParamFloat("beta")
		if err != nil {
			return err
		}
		for q := 0; q < width; q++ {
			c.RX(2*beta, base+q)
		}
	case qop.IsingEvolution:
		t, err := op.ParamFloat("time")
		if err != nil {
			return err
		}
		m, err := IsingModelFromOp(cloneAsIsingProblem(op), width)
		if err != nil {
			return err
		}
		transverse, err := op.ParamFloatDefault("transverse", 0)
		if err != nil {
			return err
		}
		stepsF, err := op.ParamFloatDefault("trotter_steps", 1)
		if err != nil {
			return err
		}
		steps := int(stepsF)
		if steps < 1 {
			return fmt.Errorf("trotter_steps %d < 1", steps)
		}
		if transverse == 0 {
			steps = 1 // diagonal evolution is exact in one step
		}
		dt := t / float64(steps)
		for s := 0; s < steps; s++ {
			for _, key := range m.Couplings() {
				u, v := base+key[0], base+key[1]
				c.CX(u, v)
				c.RZ(2*dt*m.GetJ(key[0], key[1]), v)
				c.CX(u, v)
			}
			for i, h := range m.H {
				if h != 0 {
					c.RZ(2*dt*h, base+i)
				}
			}
			if transverse != 0 {
				for q := 0; q < width; q++ {
					c.RX(2*dt*transverse, base+q)
				}
			}
		}
	case qop.AdderTemplate:
		v, err := op.ParamFloat("constant")
		if err != nil {
			return err
		}
		return lowerDraperAdd(c, base, width, uint64(v))
	case qop.ModAddTemplate:
		return lowerModPermutation(c, op, base, width, func(x, a, m uint64) uint64 { return (x + a) % m })
	case qop.ModMulTemplate:
		return lowerModPermutation(c, op, base, width, func(x, a, m uint64) uint64 { return x * a % m })
	case qop.ModExpTemplate:
		return lowerModExp(c, op, regs, offsets)
	case qop.CompareTemplate:
		return lowerCompare(c, op, regs, offsets)
	case qop.CSwap:
		ctrl, err := op.ParamInt("control")
		if err != nil {
			return err
		}
		a, err := op.ParamInt("a")
		if err != nil {
			return err
		}
		b, err := op.ParamInt("b")
		if err != nil {
			return err
		}
		c.CSwap(base+ctrl, base+a, base+b)
	case qop.SwapTest:
		return lowerSwapTest(c, op, regs, offsets)
	case qop.GroverOracle:
		return lowerGroverOracle(c, op, base, width)
	case qop.GroverDiffusion:
		for q := 0; q < width; q++ {
			c.H(base + q)
		}
		phases := make([]complex128, 1<<uint(width))
		phases[0] = 1
		for i := 1; i < len(phases); i++ {
			phases[i] = -1
		}
		if err := c.Diagonal(regQubits(base, width), phases); err != nil {
			return err
		}
		for q := 0; q < width; q++ {
			c.H(base + q)
		}
	case qop.GateList:
		return lowerGateList(c, op, base)
	case qop.Measurement:
		if op.Result == nil {
			return fmt.Errorf("MEASUREMENT without result_schema")
		}
		for cb, ref := range op.Result.ClbitOrder {
			regID, bit, err := qop.ParseBitRef(ref)
			if err != nil {
				return err
			}
			off, ok := offsets[regID]
			if !ok {
				return fmt.Errorf("measurement references unplaced register %q", regID)
			}
			c.Measure(off+bit, cb)
		}
	default:
		return fmt.Errorf("rep_kind %q has no gate-path lowering", op.RepKind)
	}
	return nil
}

func regQubits(base, width int) []int {
	qs := make([]int, width)
	for i := range qs {
		qs[i] = base + i
	}
	return qs
}

// composeAt appends src's instructions with qubits shifted by offset.
func composeAt(dst, src *circuit.Circuit, offset int) error {
	for _, ins := range src.Instrs {
		shifted := ins
		shifted.Qubits = make([]int, len(ins.Qubits))
		for i, q := range ins.Qubits {
			shifted.Qubits[i] = q + offset
		}
		if err := dst.Append(shifted); err != nil {
			return err
		}
	}
	return nil
}

// lowerQPE: |0⟩^n counting ⊗ |1⟩ eigen; controlled-P(2πφ·2^j); inverse
// QFT on counting. Measured counting value ≈ round(φ·2^n).
func lowerQPE(c *circuit.Circuit, op *qop.Operator, regs Registers, offsets map[string]int) error {
	phase, err := op.ParamFloat("phase")
	if err != nil {
		return err
	}
	eigenID, ok := op.Params["eigen_qdt"].(string)
	if !ok {
		return fmt.Errorf("QPE missing eigen_qdt")
	}
	eigenOff, ok := offsets[eigenID]
	if !ok {
		return fmt.Errorf("QPE eigen register %q unplaced", eigenID)
	}
	base := offsets[op.DomainQDT]
	n := regs[op.DomainQDT].Width
	c.X(eigenOff) // eigenstate |1⟩ of P(θ)
	for j := 0; j < n; j++ {
		c.H(base + j)
	}
	for j := 0; j < n; j++ {
		angle := 2 * math.Pi * phase * math.Pow(2, float64(j))
		c.CPhase(angle, base+j, eigenOff)
	}
	inv, err := QFTCircuit(n, 0, true, true)
	if err != nil {
		return err
	}
	return composeAt(c, inv, base)
}

// lowerDraperAdd: QFT (with swaps), per-qubit phases P(2π·c·2^j/2^n),
// inverse QFT. Exact |x⟩ → |x + c mod 2^n⟩.
func lowerDraperAdd(c *circuit.Circuit, base, width int, constant uint64) error {
	fwd, err := QFTCircuit(width, 0, true, false)
	if err != nil {
		return err
	}
	if err := composeAt(c, fwd, base); err != nil {
		return err
	}
	N := math.Pow(2, float64(width))
	for j := 0; j < width; j++ {
		angle := 2 * math.Pi * float64(constant) * math.Pow(2, float64(j)) / N
		c.Phase(angle, base+j)
	}
	inv, err := QFTCircuit(width, 0, true, true)
	if err != nil {
		return err
	}
	return composeAt(c, inv, base)
}

func lowerModPermutation(c *circuit.Circuit, op *qop.Operator, base, width int, f func(x, a, m uint64) uint64) error {
	a, err := op.ParamFloat("a")
	if err != nil {
		return err
	}
	mod, err := op.ParamFloat("modulus")
	if err != nil {
		return err
	}
	aU, mU := uint64(a), uint64(mod)
	size := uint64(1) << uint(width)
	perm := make([]uint64, size)
	for x := uint64(0); x < size; x++ {
		if x < mU {
			perm[x] = f(x, aU, mU)
		} else {
			perm[x] = x
		}
	}
	return c.Permute(regQubits(base, width), perm)
}

// lowerModExp: permutation over exponent ++ target registers realizing
// |e⟩|y⟩ → |e⟩|y·base^e mod M⟩ for y < M.
func lowerModExp(c *circuit.Circuit, op *qop.Operator, regs Registers, offsets map[string]int) error {
	baseParam, err := op.ParamFloat("base")
	if err != nil {
		return err
	}
	mod, err := op.ParamFloat("modulus")
	if err != nil {
		return err
	}
	targetID, ok := op.Params["target_qdt"].(string)
	if !ok {
		return fmt.Errorf("mod_exp missing target_qdt")
	}
	tReg, ok := regs[targetID]
	if !ok {
		return fmt.Errorf("mod_exp target register %q unknown", targetID)
	}
	we := regs[op.DomainQDT].Width
	wt := tReg.Width
	if we+wt > 24 {
		return fmt.Errorf("mod_exp over %d qubits exceeds the 24-qubit permutation limit", we+wt)
	}
	b, m := uint64(baseParam), uint64(mod)
	qubits := append(regQubits(offsets[op.DomainQDT], we), regQubits(offsets[targetID], wt)...)
	size := uint64(1) << uint(we+wt)
	perm := make([]uint64, size)
	for l := uint64(0); l < size; l++ {
		e := l & (uint64(1)<<uint(we) - 1)
		y := l >> uint(we)
		if y < m {
			yNew := y * modPow(b, e, m) % m
			perm[l] = e | yNew<<uint(we)
		} else {
			perm[l] = l
		}
	}
	return c.Permute(qubits, perm)
}

// lowerCompare: |x⟩|b⟩ → |x⟩|b ⊕ (x < constant)⟩ as a permutation over
// the data register plus the flag qubit.
func lowerCompare(c *circuit.Circuit, op *qop.Operator, regs Registers, offsets map[string]int) error {
	constant, err := op.ParamFloat("constant")
	if err != nil {
		return err
	}
	flagID, ok := op.Params["flag_qdt"].(string)
	if !ok {
		return fmt.Errorf("compare missing flag_qdt")
	}
	if _, ok := regs[flagID]; !ok {
		return fmt.Errorf("compare flag register %q unknown", flagID)
	}
	width := regs[op.DomainQDT].Width
	if width+1 > 24 {
		return fmt.Errorf("compare over %d qubits exceeds the 24-qubit permutation limit", width+1)
	}
	qubits := append(regQubits(offsets[op.DomainQDT], width), offsets[flagID])
	cU := uint64(constant)
	size := uint64(1) << uint(width+1)
	perm := make([]uint64, size)
	for l := uint64(0); l < size; l++ {
		x := l & (uint64(1)<<uint(width) - 1)
		b := l >> uint(width)
		if x < cU {
			b ^= 1
		}
		perm[l] = x | b<<uint(width)
	}
	return c.Permute(qubits, perm)
}

func lowerSwapTest(c *circuit.Circuit, op *qop.Operator, regs Registers, offsets map[string]int) error {
	aID, okA := op.Params["a_qdt"].(string)
	bID, okB := op.Params["b_qdt"].(string)
	if !okA || !okB {
		return fmt.Errorf("swap_test missing register params")
	}
	aReg, okA2 := regs[aID]
	bReg, okB2 := regs[bID]
	if !okA2 || !okB2 {
		return fmt.Errorf("swap_test registers unknown")
	}
	if aReg.Width != bReg.Width {
		return fmt.Errorf("swap_test width mismatch")
	}
	anc := offsets[op.DomainQDT]
	aOff, bOff := offsets[aID], offsets[bID]
	c.H(anc)
	for i := 0; i < aReg.Width; i++ {
		c.CSwap(anc, aOff+i, bOff+i)
	}
	c.H(anc)
	return nil
}

// cloneAsIsingProblem lets IsingModelFromOp read an ISING_EVOLUTION
// descriptor (same parameter layout, different rep kind).
func cloneAsIsingProblem(op *qop.Operator) *qop.Operator {
	cp := op.Clone()
	cp.RepKind = qop.IsingProblem
	return cp
}
