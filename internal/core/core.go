// Package core is the public face of the quantum middle layer: a Program
// collects typed registers (quantum data type descriptors) and logical
// transformations (quantum operator descriptors); Package bundles them
// into a job.json; Run executes the bundle under an execution context.
//
// This is the paper's architecture (Fig. 1) as an API: intent is stated
// once, backends and policies bind late through the context descriptor,
// and the same Program runs on the gate path, the anneal path, or the
// pulse path by swapping only the context.
package core

import (
	"fmt"

	"repro/internal/algolib"
	"repro/internal/bundle"
	"repro/internal/ctxdesc"
	"repro/internal/qdt"
	"repro/internal/qop"
	"repro/internal/result"
	"repro/internal/runtime"
)

// Program is an intent artifact under construction.
type Program struct {
	qdts []*qdt.DataType
	ops  qop.Sequence
}

// NewProgram returns an empty program.
func NewProgram() *Program { return &Program{} }

// AddRegister declares a typed register. Duplicate ids are rejected.
func (p *Program) AddRegister(d *qdt.DataType) error {
	if err := d.Validate(); err != nil {
		return err
	}
	for _, existing := range p.qdts {
		if existing.ID == d.ID {
			return fmt.Errorf("core: register %q already declared", d.ID)
		}
	}
	p.qdts = append(p.qdts, d)
	return nil
}

// Append adds operators to the program in order.
func (p *Program) Append(ops ...*qop.Operator) error {
	for _, op := range ops {
		if op == nil {
			return fmt.Errorf("core: nil operator")
		}
		if err := op.Validate(); err != nil {
			return err
		}
		p.ops = append(p.ops, op)
	}
	return nil
}

// AppendSequence adds a prebuilt sequence (e.g. from algolib.BuildQAOA).
func (p *Program) AppendSequence(seq qop.Sequence) error {
	for _, op := range seq {
		if err := p.Append(op); err != nil {
			return err
		}
	}
	return nil
}

// Registers returns the register table (shared descriptors — treat as
// immutable).
func (p *Program) Registers() algolib.Registers {
	regs := algolib.Registers{}
	for _, d := range p.qdts {
		regs[d.ID] = d
	}
	return regs
}

// Operators returns the operator sequence (shared — treat as immutable).
func (p *Program) Operators() qop.Sequence { return p.ops }

// Validate runs the library validation pass over the whole program.
func (p *Program) Validate() error {
	return algolib.Validate(p.ops, p.Registers())
}

// Package bundles the program with an execution context into a job.json
// artifact (paper §4.4's packaging step). The context may be nil; the
// runtime's scheduler will then select an engine from the intent shape.
func (p *Program) Package(ctx *ctxdesc.Context) (*bundle.Bundle, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	return bundle.New(p.qdts, p.ops, ctx)
}

// Run packages and executes the program under the given context.
func (p *Program) Run(ctx *ctxdesc.Context) (*result.Result, error) {
	b, err := p.Package(ctx)
	if err != nil {
		return nil, err
	}
	return runtime.Submit(b, runtime.Options{})
}
