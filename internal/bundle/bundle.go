// Package bundle implements submission bundles: the packaging step that
// combines quantum data types, an operator descriptor sequence, and an
// optional execution context into a single job.json artifact for a backend
// (paper §4.4).
//
// The bundle keeps the paper's central separation observable: QDTs and
// operators are *intent* artifacts, the context is *policy*. Fingerprint
// hashes only the intent half, so retargeting a job to a different backend
// provably leaves the intent unchanged (experiment E9).
package bundle

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"strings"

	"repro/internal/ctxdesc"
	"repro/internal/qdt"
	"repro/internal/qop"
	"repro/internal/schemas"
)

// SchemaName identifies the bundle schema.
const SchemaName = "job.schema.json"

// Version is the middle-layer artifact version recorded in provenance.
const Version = "0.1.0"

// Provenance records who built the bundle and the intent fingerprint.
type Provenance struct {
	CreatedBy         string `json:"created_by,omitempty"`
	Version           string `json:"version,omitempty"`
	IntentFingerprint string `json:"intent_fingerprint,omitempty"`
}

// Bundle is a job.json document.
type Bundle struct {
	Schema     string           `json:"$schema"`
	QDTs       []*qdt.DataType  `json:"qdts"`
	Operators  qop.Sequence     `json:"operators"`
	Context    *ctxdesc.Context `json:"context,omitempty"`
	Provenance *Provenance      `json:"provenance,omitempty"`
}

// New assembles a bundle, stamping provenance with the intent fingerprint.
func New(qdts []*qdt.DataType, ops qop.Sequence, ctx *ctxdesc.Context) (*Bundle, error) {
	b := &Bundle{Schema: SchemaName, QDTs: qdts, Operators: ops, Context: ctx}
	fp, err := b.Fingerprint()
	if err != nil {
		return nil, err
	}
	b.Provenance = &Provenance{CreatedBy: "repro/internal/algolib", Version: Version, IntentFingerprint: fp}
	return b, nil
}

// Widths returns the register-width table referenced by sequence
// validation.
func (b *Bundle) Widths() qop.QDTWidths {
	w := qop.QDTWidths{}
	for _, d := range b.QDTs {
		w[d.ID] = d.Width
	}
	return w
}

// QDT returns the data type with the given id.
func (b *Bundle) QDT(id string) (*qdt.DataType, error) {
	for _, d := range b.QDTs {
		if d.ID == id {
			return d, nil
		}
	}
	return nil, fmt.Errorf("bundle: no QDT with id %q", id)
}

// Validate performs the full early-validation pass: every descriptor's
// semantic checks, unique register ids, sequence-level composition rules,
// and the context block.
func (b *Bundle) Validate(opts qop.ValidateOptions) error {
	var probs []string
	if b.Schema != SchemaName {
		probs = append(probs, fmt.Sprintf("$schema is %q, want %q", b.Schema, SchemaName))
	}
	if len(b.QDTs) == 0 {
		probs = append(probs, "bundle declares no quantum data types")
	}
	if len(b.Operators) == 0 {
		probs = append(probs, "bundle declares no operators")
	}
	seen := map[string]bool{}
	for i, d := range b.QDTs {
		if d == nil {
			probs = append(probs, fmt.Sprintf("qdts[%d] is nil", i))
			continue
		}
		if err := d.Validate(); err != nil {
			probs = append(probs, err.Error())
		}
		if seen[d.ID] {
			probs = append(probs, fmt.Sprintf("duplicate QDT id %q", d.ID))
		}
		seen[d.ID] = true
	}
	if err := b.Operators.Validate(b.Widths(), opts); err != nil {
		probs = append(probs, err.Error())
	}
	if b.Context != nil {
		if err := b.Context.Validate(); err != nil {
			probs = append(probs, err.Error())
		}
	}
	if len(probs) > 0 {
		return fmt.Errorf("bundle: %s", strings.Join(probs, "; "))
	}
	return nil
}

// ValidateAgainstSchemas additionally runs the raw JSON of every artifact
// through its embedded JSON Schema. This is the path artifacts from other
// tools take.
func (b *Bundle) ValidateAgainstSchemas() error {
	var probs []string
	for _, d := range b.QDTs {
		raw, err := json.Marshal(d)
		if err != nil {
			return err
		}
		if err := schemas.Validate("qdt-core.schema.json", raw); err != nil {
			probs = append(probs, fmt.Sprintf("qdt %q: %v", d.ID, err))
		}
	}
	for i, op := range b.Operators {
		raw, err := json.Marshal(op)
		if err != nil {
			return err
		}
		if err := schemas.Validate("qod.schema.json", raw); err != nil {
			probs = append(probs, fmt.Sprintf("operator %d (%s): %v", i, op.Name, err))
		}
	}
	if b.Context != nil {
		raw, err := json.Marshal(b.Context)
		if err != nil {
			return err
		}
		if err := schemas.Validate("ctx.schema.json", raw); err != nil {
			probs = append(probs, fmt.Sprintf("context: %v", err))
		}
	}
	raw, err := json.Marshal(b)
	if err != nil {
		return err
	}
	if err := schemas.Validate("job.schema.json", raw); err != nil {
		probs = append(probs, fmt.Sprintf("bundle: %v", err))
	}
	if len(probs) > 0 {
		return fmt.Errorf("bundle schemas: %s", strings.Join(probs, "; "))
	}
	return nil
}

// Fingerprint returns a hex SHA-256 over the canonical JSON of the intent
// artifacts only (QDTs and operators, not context or provenance).
// Identical intent under different contexts yields identical fingerprints.
func (b *Bundle) Fingerprint() (string, error) {
	intent := struct {
		QDTs      []*qdt.DataType `json:"qdts"`
		Operators qop.Sequence    `json:"operators"`
	}{b.QDTs, b.Operators}
	raw, err := json.Marshal(intent)
	if err != nil {
		return "", fmt.Errorf("bundle: fingerprint: %w", err)
	}
	sum := sha256.Sum256(raw)
	return hex.EncodeToString(sum[:]), nil
}

// WithContext returns a copy of the bundle carrying a different context.
// The intent artifacts are shared (they are immutable by convention) and
// the fingerprint is preserved — this is the paper's "swap only the
// context descriptor" move.
func (b *Bundle) WithContext(ctx *ctxdesc.Context) *Bundle {
	cp := *b
	cp.Context = ctx
	return &cp
}

// Marshal serializes the bundle as indented job.json bytes.
func (b *Bundle) Marshal() ([]byte, error) {
	return json.MarshalIndent(b, "", "  ")
}

// FromJSON parses a bundle and runs semantic validation.
func FromJSON(src []byte, opts qop.ValidateOptions) (*Bundle, error) {
	var b Bundle
	if err := json.Unmarshal(src, &b); err != nil {
		return nil, fmt.Errorf("bundle: parse: %w", err)
	}
	if err := b.Validate(opts); err != nil {
		return nil, err
	}
	return &b, nil
}

// Save writes job.json to path.
func (b *Bundle) Save(path string) error {
	raw, err := b.Marshal()
	if err != nil {
		return err
	}
	return os.WriteFile(path, raw, 0o644)
}

// Load reads and validates job.json from path.
func Load(path string, opts qop.ValidateOptions) (*Bundle, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("bundle: %w", err)
	}
	return FromJSON(raw, opts)
}
