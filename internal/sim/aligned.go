package sim

import "unsafe"

// cacheLine is the alignment granted to amplitude planes and scratch
// buffers: one x86/ARM cache line. Aligning the plane base means the
// cache-blocked sweeps' per-block slices start on a line boundary whenever
// the block start index is a multiple of 8 floats (every power-of-two
// stride ≥ blockedStrideMin qualifies), so a block never straddles a line
// at its start and SIMD-friendly runs begin loaded, not split.
const cacheLine = 64

// alignedFloats allocates an n-element float64 slice whose backing array
// starts on a cacheLine boundary. The Go allocator already aligns large
// slabs, but offers no guarantee; this helper over-allocates by at most
// one line and slices forward to the boundary. The returned slice has
// capacity exactly n, so appends cannot silently step onto the unaligned
// prefix. Allocation does not touch the backing pages beyond what the
// runtime itself zeroes, keeping first-touch page placement available to
// the shard workers (see State first-touch notes in the package doc).
func alignedFloats(n int) []float64 {
	if n == 0 {
		return nil
	}
	const perLine = cacheLine / 8 // float64s per cache line
	buf := make([]float64, n+perLine-1)
	addr := uintptr(unsafe.Pointer(unsafe.SliceData(buf)))
	off := 0
	if rem := addr % cacheLine; rem != 0 {
		off = int((cacheLine - rem) / 8)
	}
	return buf[off : off+n : off+n]
}
