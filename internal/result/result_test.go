package result

import (
	"math"
	"testing"

	"repro/internal/qdt"
	"repro/internal/qop"
)

func isingReg() *qdt.DataType { return qdt.NewIsingVars("ising_vars", "s", 4) }

func TestDecodeCountsIdentitySchema(t *testing.T) {
	reg := isingReg()
	schema := qop.DefaultResultSchema(reg.ID, reg.Width, "AS_BOOL", "LSB_0")
	counts := map[uint64]int{5: 700, 10: 300}
	entries, err := DecodeCounts(counts, schema, reg)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 2 {
		t.Fatalf("%d entries", len(entries))
	}
	// Index 5 = bits 1010 carrier-first (the paper's reported string).
	if entries[0].Index != 5 || entries[0].Bitstring != "1010" || entries[0].Count != 700 {
		t.Errorf("entry 0 = %+v", entries[0])
	}
	if entries[1].Index != 10 || entries[1].Bitstring != "0101" {
		t.Errorf("entry 1 = %+v", entries[1])
	}
	if entries[0].Value.Bools[0] != true || entries[0].Value.Bools[1] != false {
		t.Errorf("decoded bools = %v", entries[0].Value.Bools)
	}
}

func TestDecodeCountsPermutedClbits(t *testing.T) {
	// clbit 0 carries register bit 3, clbit 1 bit 2, etc. (reversed).
	reg := isingReg()
	schema := &qop.ResultSchema{
		Basis: "Z", Datatype: "AS_BOOL", BitSignificance: "LSB_0",
		ClbitOrder: []string{"ising_vars[3]", "ising_vars[2]", "ising_vars[1]", "ising_vars[0]"},
	}
	// Classical value 0b0001: clbit 0 set -> register bit 3 set -> index 8.
	entries, err := DecodeCounts(map[uint64]int{1: 10}, schema, reg)
	if err != nil {
		t.Fatal(err)
	}
	if entries[0].Index != 8 || entries[0].Bitstring != "0001" {
		t.Errorf("permuted decode = %+v", entries[0])
	}
}

func TestDecodeCountsPhase(t *testing.T) {
	reg := qdt.NewPhaseRegister("reg_phase", "phase", 10)
	schema := qop.DefaultResultSchema(reg.ID, reg.Width, "AS_PHASE", "LSB_0")
	entries, err := DecodeCounts(map[uint64]int{512: 5}, schema, reg)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(entries[0].Value.Float-0.5) > 1e-12 {
		t.Errorf("phase = %v, want 0.5 turns", entries[0].Value.Float)
	}
}

func TestDecodeCountsMSB0(t *testing.T) {
	reg := qdt.New("r", "r", 3, qdt.IntRegister, qdt.AsInt)
	schema := qop.DefaultResultSchema("r", 3, "AS_INT", "MSB_0")
	// Register bit 0 is now most significant: clbit pattern 001 (bit 0
	// set) -> index 4.
	entries, err := DecodeCounts(map[uint64]int{1: 1}, schema, reg)
	if err != nil {
		t.Fatal(err)
	}
	if entries[0].Value.Int != 4 {
		t.Errorf("MSB_0 decode = %d, want 4", entries[0].Value.Int)
	}
	if entries[0].Bitstring != "100" {
		t.Errorf("carrier string = %q, want 100", entries[0].Bitstring)
	}
}

func TestDecodeCountsErrors(t *testing.T) {
	reg := isingReg()
	if _, err := DecodeCounts(map[uint64]int{}, nil, reg); err == nil {
		t.Error("nil schema accepted")
	}
	bad := qop.DefaultResultSchema("other", reg.Width, "AS_BOOL", "LSB_0")
	if _, err := DecodeCounts(map[uint64]int{}, bad, reg); err == nil {
		t.Error("mismatched schema accepted")
	}
}

func TestResultHelpers(t *testing.T) {
	r := &Result{Entries: []Entry{
		{Index: 5, Count: 700, Bitstring: "1010"},
		{Index: 10, Count: 300, Bitstring: "0101"},
		{Index: 0, Count: 700, Bitstring: "0000"},
	}}
	top, err := r.Top()
	if err != nil {
		t.Fatal(err)
	}
	// Tie at 700: lowest index wins.
	if top.Index != 0 {
		t.Errorf("Top = %+v", top)
	}
	r.Sort()
	if r.Entries[0].Index != 0 || r.Entries[1].Index != 5 || r.Entries[2].Index != 10 {
		t.Errorf("Sort order: %v %v %v", r.Entries[0].Index, r.Entries[1].Index, r.Entries[2].Index)
	}
	mean := r.Expectation(func(e Entry) float64 { return float64(e.Index) })
	want := (5.0*700 + 10*300 + 0) / 1700
	if math.Abs(mean-want) > 1e-12 {
		t.Errorf("Expectation = %v, want %v", mean, want)
	}
	empty := &Result{}
	if _, err := empty.Top(); err == nil {
		t.Error("empty Top succeeded")
	}
	if empty.Expectation(func(Entry) float64 { return 1 }) != 0 {
		t.Error("empty Expectation nonzero")
	}
}
