package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// LoadOptions configure Load.
type LoadOptions struct {
	// IncludeTests additionally parses in-package _test.go files (external
	// _test packages are skipped). The golden-file harness uses this so
	// analyzers can prove they skip test files; the simvet driver checks
	// production code only.
	IncludeTests bool
}

// Load parses and type-checks the packages matched by patterns, which are
// directory paths relative to root ("./internal/jobs") with an optional
// "..." suffix for a recursive walk ("./..."). Walks skip testdata, vendor
// and hidden directories — name a testdata tree explicitly to analyze it
// (the golden tests do). Type-checking resolves imports with the source
// importer, so the process must run inside the module (any cwd under the
// repo works; the driver and tests both do).
func Load(root string, patterns []string, opts LoadOptions) ([]*Package, error) {
	modPath, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	dirs, err := expandPatterns(root, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	imp := importer.ForCompiler(fset, "source", nil)
	var pkgs []*Package
	for _, dir := range dirs {
		p, err := loadDir(fset, imp, root, modPath, dir, opts)
		if err != nil {
			return nil, err
		}
		if p != nil {
			pkgs = append(pkgs, p)
		}
	}
	return pkgs, nil
}

// modulePath reads the module path from root/go.mod.
func modulePath(root string) (string, error) {
	raw, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: %w", err)
	}
	for _, line := range strings.Split(string(raw), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module "); ok {
			return strings.TrimSpace(rest), nil
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
}

// expandPatterns resolves patterns to a sorted, de-duplicated list of
// absolute package directories.
func expandPatterns(root string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] && hasGoFiles(dir) {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if pat == "..." {
			pat, recursive = ".", true
		} else if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			pat, recursive = rest, true
		}
		dir := pat
		if !filepath.IsAbs(dir) {
			dir = filepath.Join(root, dir)
		}
		info, err := os.Stat(dir)
		if err != nil || !info.IsDir() {
			return nil, fmt.Errorf("lint: pattern %q: not a directory", pat)
		}
		if !recursive {
			add(dir)
			continue
		}
		err = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			// The walk root is always accepted (so an explicit
			// ./internal/lint/testdata/src/... pattern works); below it the
			// usual go-tool exclusions apply.
			if path != dir && (name == "testdata" || name == "vendor" || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// loadDir parses and type-checks one package directory. Returns nil when
// the directory holds no analyzable files.
func loadDir(fset *token.FileSet, imp types.Importer, root, modPath, dir string, opts LoadOptions) (*Package, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	var files []*ast.File
	pkgName := ""
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") {
			continue
		}
		isTest := strings.HasSuffix(name, "_test.go")
		if isTest && !opts.IncludeTests {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		fname := f.Name.Name
		if isTest && strings.HasSuffix(fname, "_test") {
			continue // external test package; out of scope
		}
		if pkgName == "" {
			pkgName = fname
		}
		if fname != pkgName {
			return nil, fmt.Errorf("lint: %s: multiple packages %s and %s", dir, pkgName, fname)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	rel, err := filepath.Rel(root, dir)
	if err != nil {
		return nil, fmt.Errorf("lint: %w", err)
	}
	path := modPath
	if rel != "." {
		path += "/" + filepath.ToSlash(rel)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Uses:       map[*ast.Ident]types.Object{},
		Defs:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
	}
	conf := types.Config{Importer: imp}
	tpkg, err := conf.Check(path, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	return &Package{Path: path, Dir: dir, Fset: fset, Files: files, Types: tpkg, Info: info}, nil
}
