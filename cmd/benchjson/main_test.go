package main

import (
	"math"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestParseBench(t *testing.T) {
	in := `goos: linux
goarch: amd64
pkg: repro/internal/sim
cpu: Intel(R) Xeon(R) Processor @ 2.10GHz
BenchmarkFusedEvolve20   	       5	 213322464 ns/op	16923456 B/op	     745 allocs/op
BenchmarkFusedEvolve20Shards/shards=4-8         	       1	 99000000 ns/op
BenchmarkCompileDeep20-16 	    1549	    747519 ns/op	  535634 B/op	    1362 allocs/op
BenchmarkCompileDeep20-16 	    1549	    700000 ns/op	  535634 B/op	    1362 allocs/op
PASS
ok  	repro/internal/sim	8.935s
`
	got, err := parseBench(strings.NewReader(in), false)
	if err != nil {
		t.Fatal(err)
	}
	want := map[string]float64{
		"BenchmarkFusedEvolve20":                213322464,
		"BenchmarkFusedEvolve20Shards/shards=4": 99000000,
		"BenchmarkCompileDeep20":                700000, // last reading wins
	}
	if len(got) != len(want) {
		t.Fatalf("parsed %d benchmarks, want %d: %v", len(got), len(want), got)
	}
	for name, ns := range want {
		if got[name] != ns {
			t.Errorf("%s = %v, want %v", name, got[name], ns)
		}
	}
}

// TestParseBenchBest pins the -best aggregation: across -count repeats the
// minimum ns/op survives, regardless of reading order.
func TestParseBenchBest(t *testing.T) {
	in := `BenchmarkA-8 	 5	 300 ns/op
BenchmarkA-8 	 5	 100 ns/op
BenchmarkA-8 	 5	 200 ns/op
BenchmarkB-8 	 5	 400 ns/op
`
	got, err := parseBench(strings.NewReader(in), true)
	if err != nil {
		t.Fatal(err)
	}
	if got["BenchmarkA"] != 100 {
		t.Errorf("BenchmarkA = %v, want min 100", got["BenchmarkA"])
	}
	if got["BenchmarkB"] != 400 {
		t.Errorf("BenchmarkB = %v, want 400", got["BenchmarkB"])
	}
	last, err := parseBench(strings.NewReader(in), false)
	if err != nil {
		t.Fatal(err)
	}
	if last["BenchmarkA"] != 200 {
		t.Errorf("last-wins BenchmarkA = %v, want 200", last["BenchmarkA"])
	}
}

func TestTrimProcs(t *testing.T) {
	cases := map[string]string{
		"BenchmarkFoo-8":           "BenchmarkFoo",
		"BenchmarkFoo":             "BenchmarkFoo",
		"BenchmarkFoo/shards=4-16": "BenchmarkFoo/shards=4",
		"BenchmarkFoo/x-1":         "BenchmarkFoo/x",
		"BenchmarkFoo-":            "BenchmarkFoo-",
	}
	for in, want := range cases {
		if got := trimProcs(in); got != want {
			t.Errorf("trimProcs(%q) = %q, want %q", in, got, want)
		}
	}
}

// TestLoadBaselineStrict pins the -compare input contract: a baseline
// entry with zero, negative, NaN or infinite ns/op is a hard error
// naming the entry, never a silently odd regression ratio.
func TestLoadBaselineStrict(t *testing.T) {
	write := func(t *testing.T, body string) string {
		t.Helper()
		path := filepath.Join(t.TempDir(), "BENCH.json")
		if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
			t.Fatal(err)
		}
		return path
	}

	good, err := loadBaseline(write(t, `{"BenchmarkA": 100, "BenchmarkB": 0.5}`))
	if err != nil {
		t.Fatalf("valid baseline rejected: %v", err)
	}
	if good["BenchmarkA"] != 100 || good["BenchmarkB"] != 0.5 {
		t.Fatalf("valid baseline misread: %v", good)
	}

	rejected := map[string]string{
		"zero":     `{"BenchmarkOK": 100, "BenchmarkZero": 0}`,
		"negative": `{"BenchmarkNeg": -7}`,
	}
	for name, body := range rejected {
		if _, err := loadBaseline(write(t, body)); err == nil {
			t.Errorf("%s baseline accepted, want error", name)
		} else if !strings.Contains(err.Error(), "re-record the baseline") {
			t.Errorf("%s baseline error %q lacks the remediation hint", name, err)
		}
	}
	// JSON cannot encode NaN/Inf literals, so they arrive only through a
	// future non-JSON path; validateBaseline still rejects them.
	if err := validateBaseline(map[string]float64{"BenchmarkNaN": math.NaN()}); err == nil {
		t.Error("NaN baseline entry accepted, want error")
	}
	if err := validateBaseline(map[string]float64{"BenchmarkInf": math.Inf(1)}); err == nil {
		t.Error("infinite baseline entry accepted, want error")
	}
	// The error names the offending entry, deterministically the first
	// in name order.
	_, err = loadBaseline(write(t, `{"BenchmarkB_bad": 0, "BenchmarkA_bad": 0}`))
	if err == nil || !strings.Contains(err.Error(), `"BenchmarkA_bad"`) {
		t.Errorf("error %v does not name the first offending entry", err)
	}
}

func TestCompareBench(t *testing.T) {
	baseline := map[string]float64{
		"BenchmarkA":    100,
		"BenchmarkB":    100,
		"BenchmarkC":    100,
		"BenchmarkGone": 50,
	}
	fresh := map[string]float64{
		"BenchmarkA":   114, // within 15%
		"BenchmarkB":   130, // regressed
		"BenchmarkC":   80,  // improved
		"BenchmarkNew": 999,
	}
	warnings := compareBench(baseline, fresh, 0.15)
	if len(warnings) != 1 {
		t.Fatalf("warnings = %v, want exactly one", warnings)
	}
	if !strings.Contains(warnings[0], "BenchmarkB") || !strings.Contains(warnings[0], "30.0%") {
		t.Fatalf("warning = %q", warnings[0])
	}
	if got := compareBench(baseline, fresh, 0.5); len(got) != 0 {
		t.Fatalf("loose threshold warnings = %v", got)
	}
}
