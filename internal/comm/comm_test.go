package comm

import (
	"math"
	"math/cmplx"
	"testing"

	"repro/internal/circuit"
	"repro/internal/ctxdesc"
	"repro/internal/rng"
	"repro/internal/sim"
)

func TestBlockPartition(t *testing.T) {
	p, err := BlockPartition(8, 2, 4)
	if err != nil {
		t.Fatal(err)
	}
	for q := 0; q < 4; q++ {
		if p.Assign[q] != 0 {
			t.Errorf("qubit %d on QPU %d, want 0", q, p.Assign[q])
		}
	}
	for q := 4; q < 8; q++ {
		if p.Assign[q] != 1 {
			t.Errorf("qubit %d on QPU %d, want 1", q, p.Assign[q])
		}
	}
	if _, err := BlockPartition(9, 2, 4); err == nil {
		t.Error("over-capacity partition accepted")
	}
	if _, err := BlockPartition(4, 0, 4); err == nil {
		t.Error("zero QPUs accepted")
	}
}

func TestFromContextExplicit(t *testing.T) {
	cfg := &ctxdesc.Comm{QPUs: 2, QubitsPerQPU: 2, Partition: []int{0, 1, 0, 1}}
	p, err := FromContext(cfg, 4)
	if err != nil {
		t.Fatal(err)
	}
	if p.Assign[1] != 1 || p.Assign[2] != 0 {
		t.Errorf("explicit partition ignored: %v", p.Assign)
	}
	// Wrong length.
	if _, err := FromContext(cfg, 5); err == nil {
		t.Error("mismatched explicit partition accepted")
	}
	// Capacity violation.
	over := &ctxdesc.Comm{QPUs: 2, QubitsPerQPU: 1, Partition: []int{0, 0, 1, 1}}
	if _, err := FromContext(over, 4); err == nil {
		t.Error("over-capacity explicit partition accepted")
	}
	// Bad device index.
	bad := &ctxdesc.Comm{QPUs: 2, QubitsPerQPU: 4, Partition: []int{0, 5, 0, 0}}
	if _, err := FromContext(bad, 4); err == nil {
		t.Error("nonexistent QPU accepted")
	}
}

func TestAnalyzeCounts(t *testing.T) {
	p, _ := BlockPartition(4, 2, 2)
	c := circuit.New(4, 0)
	c.H(0)
	c.CX(0, 1) // local (QPU 0)
	c.CX(1, 2) // crossing
	c.CX(2, 3) // local (QPU 1)
	c.CX(0, 3) // crossing
	plan, err := Analyze(c, p)
	if err != nil {
		t.Fatal(err)
	}
	if plan.CrossingGates != 2 || plan.EPRPairs != 2 || plan.ClassicalBits != 4 {
		t.Errorf("plan = %+v", plan)
	}
	if plan.LocalGates != 3 { // h + 2 local cx
		t.Errorf("local gates = %d, want 3", plan.LocalGates)
	}
	if plan.PerQPUGates[0] != 2 || plan.PerQPUGates[1] != 1 {
		t.Errorf("per-QPU gates = %v", plan.PerQPUGates)
	}
}

func TestAnalyzeRejectsWideGates(t *testing.T) {
	p, _ := BlockPartition(3, 3, 1)
	c := circuit.New(3, 0)
	c.CCX(0, 1, 2)
	if _, err := Analyze(c, p); err == nil {
		t.Error("3-qubit gate analyzed without decomposition")
	}
}

// stateEqualUpToPhase compares two states up to global phase.
func stateEqualUpToPhase(a, b *sim.State, tol float64) bool {
	var phase complex128
	found := false
	for k := 0; k < a.Dim() && !found; k++ {
		if cmplx.Abs(b.Amplitude(uint64(k))) > tol {
			phase = a.Amplitude(uint64(k)) / b.Amplitude(uint64(k))
			found = true
		}
	}
	if !found {
		return false
	}
	for k := 0; k < a.Dim(); k++ {
		if cmplx.Abs(a.Amplitude(uint64(k))-phase*b.Amplitude(uint64(k))) > tol {
			return false
		}
	}
	return true
}

func TestNonLocalCXEquivalence(t *testing.T) {
	// The coherent teleported CX must act exactly like CX on the data
	// qubits, with both ancillas ending in |+⟩ (so H·H returns them to
	// |00⟩ and the full states match).
	r := rng.New(99)
	for trial := 0; trial < 5; trial++ {
		// Random 2-qubit data state.
		angles := make([]float64, 4)
		for i := range angles {
			angles[i] = r.Float64() * 3
		}
		direct := circuit.New(4, 0)
		direct.RY(angles[0], 0).RZ(angles[1], 0).RY(angles[2], 1).RZ(angles[3], 1)
		direct.CX(0, 1)

		tele := circuit.New(4, 0)
		tele.RY(angles[0], 0).RZ(angles[1], 0).RY(angles[2], 1).RZ(angles[3], 1)
		NonLocalCX(tele, 0, 1, 2, 3)
		// Rotate the |+⟩ ancillas back to |0⟩ for exact comparison.
		tele.H(2).H(3)

		s1, err := sim.Evolve(direct)
		if err != nil {
			t.Fatal(err)
		}
		s2, err := sim.Evolve(tele)
		if err != nil {
			t.Fatal(err)
		}
		if !stateEqualUpToPhase(s1, s2, 1e-9) {
			t.Fatalf("trial %d: teleported CX is not equivalent to CX", trial)
		}
	}
}

func TestDistributeBellAcrossQPUs(t *testing.T) {
	// Bell pair across two single-qubit QPUs: the crossing CX is
	// teleported, and the measured distribution is unchanged.
	c := circuit.New(2, 2)
	c.H(0)
	c.CX(0, 1)
	c.MeasureAll()
	cfg := &ctxdesc.Comm{QPUs: 2, QubitsPerQPU: 1, AllowTeleport: true}
	res, err := Distribute(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.EPRPairs != 1 {
		t.Errorf("EPR pairs = %d, want 1", res.Plan.EPRPairs)
	}
	if res.Circuit.NumQubits != 4 {
		t.Errorf("distributed circuit has %d qubits, want 4", res.Circuit.NumQubits)
	}
	out, err := sim.Run(res.Circuit, sim.Options{Shots: 4000, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Counts) != 2 {
		t.Fatalf("distributed Bell outcomes: %v", out.Counts)
	}
	for _, k := range []uint64{0, 3} {
		frac := float64(out.Counts[k]) / 4000
		if math.Abs(frac-0.5) > 0.05 {
			t.Errorf("outcome %d frequency %v", k, frac)
		}
	}
}

func TestDistributeRespectsPolicy(t *testing.T) {
	c := circuit.New(2, 0)
	c.CX(0, 1)
	// Teleport forbidden.
	noTele := &ctxdesc.Comm{QPUs: 2, QubitsPerQPU: 1, AllowTeleport: false}
	if _, err := Distribute(c, noTele); err == nil {
		t.Error("crossing gate accepted with allow_teleport=false")
	}
	// EPR budget too small.
	tight := &ctxdesc.Comm{QPUs: 2, QubitsPerQPU: 1, AllowTeleport: true, EPRBufferPairs: 0}
	if _, err := Distribute(c, tight); err != nil {
		t.Errorf("EPR buffer 0 means unlimited: %v", err)
	}
	c2 := circuit.New(2, 0)
	c2.CX(0, 1)
	c2.CX(0, 1)
	budget1 := &ctxdesc.Comm{QPUs: 2, QubitsPerQPU: 1, AllowTeleport: true, EPRBufferPairs: 1}
	if _, err := Distribute(c2, budget1); err == nil {
		t.Error("2 teleports accepted with 1-pair buffer")
	}
}

func TestDistributeRejectsNonCXCrossing(t *testing.T) {
	c := circuit.New(2, 0)
	c.CPhase(0.5, 0, 1)
	cfg := &ctxdesc.Comm{QPUs: 2, QubitsPerQPU: 1, AllowTeleport: true}
	if _, err := Distribute(c, cfg); err == nil {
		t.Error("crossing cp accepted (must decompose to cx first)")
	}
}

func TestDistributeLocalOnly(t *testing.T) {
	c := circuit.New(4, 0)
	c.H(0).CX(0, 1).CX(2, 3)
	cfg := &ctxdesc.Comm{QPUs: 2, QubitsPerQPU: 2, AllowTeleport: true}
	res, err := Distribute(c, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.Plan.CrossingGates != 0 || res.Circuit.NumQubits != 4 {
		t.Errorf("local-only circuit modified: %+v", res.Plan)
	}
}
