// Command benchjson converts `go test -bench` output on stdin into a JSON
// object mapping benchmark name → ns/op on stdout. CI pipes the bench
// smoke step through it to publish BENCH_PR<n>.json artifacts, so the
// performance trajectory of the kernel engine is recorded run over run
// instead of scrolling away in logs.
//
//	go test -run '^$' -bench . -benchtime 1x ./... | benchjson > BENCH.json
//
// Sub-benchmarks keep their full slash-separated name; the -N GOMAXPROCS
// suffix is stripped so artifacts diff cleanly across machines. A
// benchmark appearing more than once (e.g. -count > 1) keeps its last
// reading by default; -best keeps the minimum ns/op across repeats
// instead — the standard noise filter for committed baselines, since the
// fastest repeat is the one least disturbed by machine load.
//
// -compare OLD.json additionally diffs the fresh readings against a
// committed baseline and prints a WARNING line to stderr for every
// benchmark slower than the baseline by more than -threshold (default
// 0.15, i.e. 15%). Warnings never change the exit status — 1x smoke
// timings are noisy, so the diff flags candidates for a real benchmark
// run rather than gating the build.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"math"
	"os"
	"sort"
	"strings"
)

func main() {
	compare := flag.String("compare", "", "baseline BENCH json to diff against (warnings on stderr)")
	threshold := flag.Float64("threshold", 0.15, "relative ns/op regression that triggers a warning")
	best := flag.Bool("best", false, "keep the minimum ns/op across -count repeats instead of the last")
	flag.Parse()
	results, err := parseBench(os.Stdin, *best)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	enc := json.NewEncoder(os.Stdout)
	enc.SetIndent("", "  ")
	if err := enc.Encode(results); err != nil {
		fmt.Fprintln(os.Stderr, "benchjson:", err)
		os.Exit(1)
	}
	if *compare != "" {
		baseline, err := loadBaseline(*compare)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchjson:", err)
			os.Exit(1)
		}
		for _, w := range compareBench(baseline, results, *threshold) {
			fmt.Fprintln(os.Stderr, w)
		}
	}
}

// loadBaseline reads and strictly validates a committed baseline: every
// entry must be a finite, strictly positive ns/op reading. A zero,
// negative or NaN baseline would turn the regression ratio into
// garbage (division by zero, inverted sign, always-false comparison),
// so a bad file is a hard error naming the offending entry rather than
// a silently odd diff.
func loadBaseline(path string) (map[string]float64, error) {
	raw, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	out := map[string]float64{}
	if err := json.Unmarshal(raw, &out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if err := validateBaseline(out); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return out, nil
}

// validateBaseline rejects entries no regression ratio can be computed
// against.
func validateBaseline(baseline map[string]float64) error {
	names := make([]string, 0, len(baseline))
	for name := range baseline {
		names = append(names, name)
	}
	sort.Strings(names) // deterministic error for multi-entry failures
	for _, name := range names {
		ns := baseline[name]
		switch {
		case math.IsNaN(ns):
			return fmt.Errorf("baseline entry %q is NaN ns/op; re-record the baseline", name)
		case math.IsInf(ns, 0):
			return fmt.Errorf("baseline entry %q is infinite ns/op; re-record the baseline", name)
		case ns <= 0:
			return fmt.Errorf("baseline entry %q has non-positive ns/op %v; re-record the baseline", name, ns)
		}
	}
	return nil
}

// compareBench returns one warning line (sorted by benchmark name) per
// benchmark whose fresh ns/op exceeds the baseline by more than the
// relative threshold. Benchmarks absent from either side are skipped —
// new benchmarks have no baseline, retired ones no reading.
func compareBench(baseline, fresh map[string]float64, threshold float64) []string {
	names := make([]string, 0, len(fresh))
	for name := range fresh {
		names = append(names, name)
	}
	sort.Strings(names)
	var warnings []string
	for _, name := range names {
		// loadBaseline already rejected non-positive readings, so the
		// ratio below is always well-defined.
		old, ok := baseline[name]
		if !ok {
			continue
		}
		ratio := fresh[name]/old - 1
		if ratio > threshold {
			warnings = append(warnings,
				fmt.Sprintf("benchjson: WARNING %s regressed %.1f%% (%.0f → %.0f ns/op)",
					name, ratio*100, old, fresh[name]))
		}
	}
	return warnings
}

// parseBench extracts name → ns/op pairs from benchmark result lines of
// the form:
//
//	BenchmarkName-8   	      10	 123456 ns/op	  16 B/op ...
//
// With best set, repeated readings of one benchmark keep the minimum
// ns/op; otherwise the last reading wins.
func parseBench(r io.Reader, best bool) (map[string]float64, error) {
	results := make(map[string]float64)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		fields := strings.Fields(sc.Text())
		if len(fields) < 4 || !isBenchName(fields[0]) {
			continue
		}
		// Find the value preceding the "ns/op" unit token.
		for i := 2; i+1 < len(fields); i++ {
			if fields[i+1] != "ns/op" {
				continue
			}
			var ns float64
			if _, err := fmt.Sscanf(fields[i], "%g", &ns); err == nil {
				name := trimProcs(fields[0])
				if prev, seen := results[name]; !best || !seen || ns < prev {
					results[name] = ns
				}
			}
			break
		}
	}
	return results, sc.Err()
}

func isBenchName(s string) bool {
	const prefix = "Benchmark"
	return len(s) > len(prefix) && s[:len(prefix)] == prefix
}

// trimProcs strips the trailing -N GOMAXPROCS suffix from a benchmark
// name, leaving sub-benchmark paths (and any -N inside them) intact.
func trimProcs(name string) string {
	for i := len(name) - 1; i >= 0; i-- {
		c := name[i]
		if c >= '0' && c <= '9' {
			continue
		}
		if c == '-' && i < len(name)-1 {
			return name[:i]
		}
		break
	}
	return name
}
