package store

import (
	"encoding/json"
	"fmt"
	"testing"
)

// TestTraceSurvivesReplayAndCompaction pins the trace contract on the
// journal: the submitted event's trace lands on the replayed record, and
// compaction's record→events rewrite carries it into the next process
// life.
func TestTraceSurvivesReplayAndCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{Sync: SyncNone, CompactFactor: 2})
	if err != nil {
		t.Fatal(err)
	}
	// Two long-lived traced records, then churn past the compaction
	// threshold.
	for i := 1; i <= 2; i++ {
		ev := Event{
			T: EvSubmitted, Job: fmt.Sprintf("job-%08d", i), Trace: fmt.Sprintf("trace-%d", i),
			At: tstamp(i), Key: sampleKey(i), Bundle: json.RawMessage(`{}`),
		}
		if err := s.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	for i := 10; i < 200; i++ {
		id := fmt.Sprintf("job-%08d", i)
		for _, ev := range []Event{
			{T: EvSubmitted, Job: id, At: tstamp(i), Key: sampleKey(i % 50)},
			{T: EvCanceled, Job: id, At: tstamp(i)},
			{T: EvForget, Job: id, At: tstamp(i)},
		} {
			if err := s.Append(ev); err != nil {
				t.Fatal(err)
			}
		}
	}
	if s.Stats().Compactions == 0 {
		t.Fatal("churn did not trigger a compaction")
	}
	for _, r := range s.Records() {
		var n int
		fmt.Sscanf(r.Job, "job-%08d", &n)
		if want := fmt.Sprintf("trace-%d", n); r.Trace != want {
			t.Fatalf("record %s trace = %q, want %q", r.Job, r.Trace, want)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	recs := s2.Records()
	if len(recs) != 2 {
		t.Fatalf("replayed %d records, want 2", len(recs))
	}
	for i, r := range recs {
		if want := fmt.Sprintf("trace-%d", i+1); r.Trace != want {
			t.Fatalf("post-compaction replay lost the trace: %s = %q, want %q", r.Job, r.Trace, want)
		}
	}
}
