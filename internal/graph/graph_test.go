package graph

import (
	"testing"
	"testing/quick"
)

func TestCycle4MaxCut(t *testing.T) {
	// The paper's §5 instance: 4-cycle, unit weights. Optimal cut = 4 with
	// exactly the two alternating assignments 0101 and 1010.
	g := Cycle(4)
	res := g.MaxCutBruteForce()
	if res.Value != 4 {
		t.Errorf("Cycle(4) max cut = %v, want 4", res.Value)
	}
	// bit i = vertex i; 0101 (vertices 0,2 on one side) = 0b0101 = 5,
	// 1010 = 10.
	want := []uint64{5, 10}
	if len(res.Assignments) != 2 || res.Assignments[0] != want[0] || res.Assignments[1] != want[1] {
		t.Errorf("Cycle(4) optimal assignments = %v, want %v", res.Assignments, want)
	}
}

func TestCycle5MaxCut(t *testing.T) {
	// Odd cycle: max cut is n-1.
	res := Cycle(5).MaxCutBruteForce()
	if res.Value != 4 {
		t.Errorf("Cycle(5) max cut = %v, want 4", res.Value)
	}
}

func TestCompleteMaxCut(t *testing.T) {
	// K_n max cut = floor(n/2)*ceil(n/2).
	for n := 2; n <= 8; n++ {
		res := Complete(n).MaxCutBruteForce()
		want := float64((n / 2) * ((n + 1) / 2))
		if res.Value != want {
			t.Errorf("K_%d max cut = %v, want %v", n, res.Value, want)
		}
	}
}

func TestPathMaxCut(t *testing.T) {
	// A path is bipartite: every edge can be cut.
	for n := 2; n <= 10; n++ {
		res := Path(n).MaxCutBruteForce()
		if res.Value != float64(n-1) {
			t.Errorf("Path(%d) max cut = %v, want %d", n, res.Value, n-1)
		}
	}
}

func TestGridBipartite(t *testing.T) {
	g := Grid(3, 4)
	res := g.MaxCutBruteForce()
	if res.Value != g.TotalWeight() {
		t.Errorf("grid max cut %v != total weight %v (grid is bipartite)", res.Value, g.TotalWeight())
	}
}

func TestCutValueMatchesBits(t *testing.T) {
	g := ErdosRenyi(8, 0.5, 11)
	for mask := uint64(0); mask < 256; mask++ {
		assign := make([]bool, 8)
		for i := 0; i < 8; i++ {
			assign[i] = (mask>>uint(i))&1 == 1
		}
		if g.CutValue(assign) != g.CutValueBits(mask) {
			t.Fatalf("CutValue disagrees with CutValueBits at mask %b", mask)
		}
	}
}

func TestAddEdgeErrors(t *testing.T) {
	g := New(3)
	if err := g.AddEdge(0, 0, 1); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddEdge(0, 3, 1); err == nil {
		t.Error("out-of-range endpoint accepted")
	}
	if err := g.AddEdge(-1, 1, 1); err == nil {
		t.Error("negative endpoint accepted")
	}
	if err := g.AddEdge(2, 1, 1); err != nil {
		t.Errorf("valid edge rejected: %v", err)
	}
	if !g.HasEdge(1, 2) || !g.HasEdge(2, 1) {
		t.Error("edge endpoint order not normalized")
	}
}

func TestDegreeAndNeighbors(t *testing.T) {
	g := Cycle(5)
	for v := 0; v < 5; v++ {
		if d := g.Degree(v); d != 2 {
			t.Errorf("cycle vertex %d degree %d, want 2", v, d)
		}
	}
	ns := g.Neighbors(0)
	if len(ns) != 2 || ns[0] != 1 || ns[1] != 4 {
		t.Errorf("Neighbors(0) = %v, want [1 4]", ns)
	}
}

func TestErdosRenyiDeterministic(t *testing.T) {
	a := ErdosRenyi(10, 0.4, 7)
	b := ErdosRenyi(10, 0.4, 7)
	if len(a.Edges) != len(b.Edges) {
		t.Fatalf("same seed gave %d vs %d edges", len(a.Edges), len(b.Edges))
	}
	for i := range a.Edges {
		if a.Edges[i] != b.Edges[i] {
			t.Fatalf("edge %d differs: %v vs %v", i, a.Edges[i], b.Edges[i])
		}
	}
}

func TestErdosRenyiExtremes(t *testing.T) {
	if g := ErdosRenyi(6, 0, 1); len(g.Edges) != 0 {
		t.Errorf("G(6,0) has %d edges", len(g.Edges))
	}
	if g := ErdosRenyi(6, 1, 1); len(g.Edges) != 15 {
		t.Errorf("G(6,1) has %d edges, want 15", len(g.Edges))
	}
}

func TestRandomWeightedPreservesTopology(t *testing.T) {
	base := Cycle(6)
	w := RandomWeighted(base, 0.5, 2.0, 3)
	if len(w.Edges) != len(base.Edges) {
		t.Fatal("topology changed")
	}
	for i, e := range w.Edges {
		if e.U != base.Edges[i].U || e.V != base.Edges[i].V {
			t.Errorf("edge %d endpoints changed", i)
		}
		if e.Weight < 0.5 || e.Weight >= 2.0 {
			t.Errorf("edge %d weight %v out of [0.5, 2.0)", i, e.Weight)
		}
	}
}

func TestConnected(t *testing.T) {
	if !Cycle(5).Connected() {
		t.Error("cycle not connected")
	}
	if !New(1).Connected() {
		t.Error("singleton not connected")
	}
	g := New(4)
	_ = g.AddEdge(0, 1, 1)
	_ = g.AddEdge(2, 3, 1)
	if g.Connected() {
		t.Error("two components reported connected")
	}
}

func TestQuickCutBoundedByTotalWeight(t *testing.T) {
	f := func(seed uint64, mask uint16) bool {
		g := ErdosRenyi(10, 0.5, seed)
		cut := g.CutValueBits(uint64(mask) & 0x3ff)
		return cut >= 0 && cut <= g.TotalWeight()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickGlobalFlipSymmetry(t *testing.T) {
	f := func(seed uint64, mask uint16) bool {
		g := ErdosRenyi(10, 0.5, seed)
		m := uint64(mask) & 0x3ff
		full := uint64(1)<<10 - 1
		return g.CutValueBits(m) == g.CutValueBits(m^full)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestBruteForcePanicsOnLarge(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("brute force on 31 vertices did not panic")
		}
	}()
	New(31).MaxCutBruteForce()
}
