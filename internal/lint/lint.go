package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Diagnostic is one analyzer finding, reported by the driver as
// "file:line:col: analyzer: message".
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Package is one parsed and type-checked package under analysis.
type Package struct {
	// Path is the package's import path (module path + directory).
	Path string
	// Dir is the package's directory on disk.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Analyzer is one repo-invariant check. Run returns raw findings; the
// Apply driver filters //lint:ignore'd lines and sorts.
type Analyzer struct {
	// Name is the analyzer's short identifier, used in diagnostics and in
	// //lint:ignore directives.
	Name string
	// Doc is a one-line statement of the contract the analyzer encodes.
	Doc string
	Run func(*Package) []Diagnostic
}

// All returns the full analyzer suite in reporting order.
func All() []*Analyzer {
	return []*Analyzer{
		Determinism(),
		Lockblock(),
		SoaComplex(),
		ObsConv(),
		JournalErr(),
	}
}

// ignoreDirective is a parsed "//lint:ignore <analyzer> <reason>" comment.
// It suppresses findings of the named analyzer ("*" for all) on the
// directive's own line and on the line directly below it, so both the
// trailing-comment and the preceding-line styles work:
//
//	foo() //lint:ignore lockblock s.mu is the file handle's own lock
//
//	//lint:ignore journalerr failures are counted by the store
//	_ = s.Append(ev)
const ignorePrefix = "//lint:ignore"

// ignoreSet maps filename → line → analyzer names suppressed on it.
type ignoreSet map[string]map[int]map[string]bool

// buildIgnores collects the package's ignore directives. A directive
// without an analyzer name or without a reason is itself a finding — an
// unexplained suppression is exactly the reviewer-memory problem the
// suite exists to remove.
func buildIgnores(p *Package) (ignoreSet, []Diagnostic) {
	set := ignoreSet{}
	var diags []Diagnostic
	for _, f := range p.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, ignorePrefix) {
					continue
				}
				pos := p.Fset.Position(c.Pos())
				fields := strings.Fields(strings.TrimPrefix(c.Text, ignorePrefix))
				if len(fields) < 2 {
					diags = append(diags, Diagnostic{
						Pos:      pos,
						Analyzer: "lint",
						Message:  "malformed ignore directive: want //lint:ignore <analyzer> <reason>",
					})
					continue
				}
				name := fields[0]
				byLine := set[pos.Filename]
				if byLine == nil {
					byLine = map[int]map[string]bool{}
					set[pos.Filename] = byLine
				}
				for _, line := range []int{pos.Line, pos.Line + 1} {
					if byLine[line] == nil {
						byLine[line] = map[string]bool{}
					}
					byLine[line][name] = true
				}
			}
		}
	}
	return set, diags
}

func (s ignoreSet) suppressed(d Diagnostic) bool {
	names := s[d.Pos.Filename][d.Pos.Line]
	return names["*"] || names[d.Analyzer]
}

// Apply runs every analyzer over every package, drops findings suppressed
// by //lint:ignore directives, and returns the rest sorted by position.
func Apply(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var out []Diagnostic
	for _, p := range pkgs {
		ignores, diags := buildIgnores(p)
		out = append(out, diags...)
		for _, a := range analyzers {
			for _, d := range a.Run(p) {
				if !ignores.suppressed(d) {
					out = append(out, d)
				}
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// hasPathSuffix reports whether an import path ends in the given
// slash-separated suffix on a path-segment boundary. Analyzer scopes
// match by suffix so the testdata fixture trees (whose packages live
// under internal/lint/testdata/src/<case>/…) hit the same rules as the
// real packages they mirror.
func hasPathSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}

// inTestFile reports whether the node's position lies in a _test.go
// file. The contracts bind production code; tests may use banned
// constructs (the parity reference simulator keeps complex128 on
// purpose, fixtures seed math/rand freely).
func (p *Package) inTestFile(n ast.Node) bool {
	return strings.HasSuffix(p.Fset.Position(n.Pos()).Filename, "_test.go")
}

// position is shorthand for the fset lookup.
func (p *Package) position(n ast.Node) token.Position {
	return p.Fset.Position(n.Pos())
}

// funcObj resolves a call expression's callee to its *types.Func, seeing
// through parenthesization. Returns nil for builtins, type conversions,
// and calls of function-typed values.
func (p *Package) funcObj(call *ast.CallExpr) *types.Func {
	switch fn := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		obj, _ := p.Info.Uses[fn].(*types.Func)
		return obj
	case *ast.SelectorExpr:
		obj, _ := p.Info.Uses[fn.Sel].(*types.Func)
		return obj
	}
	return nil
}

// recvTypePkgPath returns the package path and type name of a method's
// receiver named type ("" for non-methods), unwrapping the pointer.
func recvTypePkgPath(fn *types.Func) (pkgPath, typeName string) {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return "", ""
	}
	t := sig.Recv().Type()
	if ptr, ok := t.(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return "", ""
	}
	obj := named.Obj()
	if obj.Pkg() == nil {
		return "", obj.Name()
	}
	return obj.Pkg().Path(), obj.Name()
}
