package obs

import (
	"fmt"
	"strconv"
)

// A family is the bounded-cardinality form of a labeled instrument: one
// label name whose complete value set is declared at registration, never
// extended afterwards. Every child is created eagerly, so hot paths index
// a pre-resolved slice (At) with no lock, no map lookup, and no
// allocation — the shape the per-kernel simulator instruments need. The
// fixed enum is what keeps the /metrics exposition bounded; the obsconv
// analyzer rejects families whose value set is not a literal, so a job or
// trace ID can never leak in as a label value.

// maxFamilyValues bounds a family's cardinality. A fixed enum larger than
// this is almost certainly a dynamic value set in disguise.
const maxFamilyValues = 32

// CounterFamily is a set of counters sharing one name, split by a fixed
// single-label enum. Obtain one from Registry.CounterFamily.
type CounterFamily struct {
	label  string
	values []string
	index  map[string]int
	kids   []*Counter
}

// CounterFamily registers name with one child counter per enum value
// under the given label. The value set is fixed: unknown values panic in
// With, and the set cannot grow after registration.
func (r *Registry) CounterFamily(name, help, label string, values []string) *CounterFamily {
	f := &CounterFamily{
		label:  label,
		values: checkFamilyValues(name, values),
		index:  make(map[string]int, len(values)),
		kids:   make([]*Counter, len(values)),
	}
	for i, v := range f.values {
		f.index[v] = i
		f.kids[i] = r.Counter(name, help, Label{Name: label, Value: v})
	}
	return f
}

// At returns the child for enum ordinal i — the zero-cost accessor for
// callers that know their ordinal at compile time (the simulator's
// kernel-kind instruments).
func (f *CounterFamily) At(i int) *Counter { return f.kids[i] }

// With returns the child for the given enum value, panicking on a value
// outside the registered set.
func (f *CounterFamily) With(value string) *Counter {
	i, ok := f.index[value]
	if !ok {
		panic("obs: counter family " + f.label + " has no value " + strconv.Quote(value))
	}
	return f.kids[i]
}

// Values returns the enum, in At ordinal order.
func (f *CounterFamily) Values() []string {
	out := make([]string, len(f.values))
	copy(out, f.values)
	return out
}

// HistogramFamily is a set of histograms sharing one name and bucket
// layout, split by a fixed single-label enum. Obtain one from
// Registry.HistogramFamily.
type HistogramFamily struct {
	label  string
	values []string
	index  map[string]int
	kids   []*Histogram
}

// HistogramFamily registers name with one child histogram per enum value
// under the given label (nil buckets = DefBuckets).
func (r *Registry) HistogramFamily(name, help string, buckets []float64, label string, values []string) *HistogramFamily {
	f := &HistogramFamily{
		label:  label,
		values: checkFamilyValues(name, values),
		index:  make(map[string]int, len(values)),
		kids:   make([]*Histogram, len(values)),
	}
	for i, v := range f.values {
		f.index[v] = i
		f.kids[i] = r.Histogram(name, help, buckets, Label{Name: label, Value: v})
	}
	return f
}

// At returns the child for enum ordinal i.
func (f *HistogramFamily) At(i int) *Histogram { return f.kids[i] }

// With returns the child for the given enum value, panicking on a value
// outside the registered set.
func (f *HistogramFamily) With(value string) *Histogram {
	i, ok := f.index[value]
	if !ok {
		panic("obs: histogram family " + f.label + " has no value " + strconv.Quote(value))
	}
	return f.kids[i]
}

// Values returns the enum, in At ordinal order.
func (f *HistogramFamily) Values() []string {
	out := make([]string, len(f.values))
	copy(out, f.values)
	return out
}

func checkFamilyValues(name string, values []string) []string {
	if len(values) == 0 {
		panic("obs: family " + name + " registered with no values")
	}
	if len(values) > maxFamilyValues {
		panic(fmt.Sprintf("obs: family %s has %d values (max %d) — labels must be a small fixed enum", name, len(values), maxFamilyValues))
	}
	out := make([]string, len(values))
	seen := map[string]bool{}
	for i, v := range values {
		if v == "" {
			panic("obs: family " + name + " has an empty label value")
		}
		if seen[v] {
			panic("obs: family " + name + " repeats label value " + strconv.Quote(v))
		}
		seen[v] = true
		out[i] = v
	}
	return out
}
